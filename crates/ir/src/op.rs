//! Operation kinds and the [`Operation`] DFG node.

use crate::ids::{CfgEdgeId, PortId};
use crate::predicate::Predicate;
use std::fmt;

/// Comparison flavours, used by [`OpKind::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpKind {
    /// Equality (`==`), the paper's `neq_op` inverse.
    Eq,
    /// Inequality (`!=`), e.g. the `delta != 0` loop exit test.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than, e.g. the `aver > th` test of Figure 1.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpKind {
    /// Short mnemonic used in resource names and reports (`gt`, `neq`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "neq",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        }
    }

    /// Evaluates the comparison on two signed values.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpKind::Eq => lhs == rhs,
            CmpKind::Ne => lhs != rhs,
            CmpKind::Lt => lhs < rhs,
            CmpKind::Le => lhs <= rhs,
            CmpKind::Gt => lhs > rhs,
            CmpKind::Ge => lhs >= rhs,
        }
    }

    /// Returns the comparison with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> Self {
        match self {
            CmpKind::Eq => CmpKind::Eq,
            CmpKind::Ne => CmpKind::Ne,
            CmpKind::Lt => CmpKind::Gt,
            CmpKind::Le => CmpKind::Ge,
            CmpKind::Gt => CmpKind::Lt,
            CmpKind::Ge => CmpKind::Le,
        }
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The kind of a DFG operation.
///
/// Kinds are deliberately close to what an HLS front-end produces from a
/// behavioural description: arithmetic, logic, shifts, comparisons,
/// multiplexers introduced by predicate conversion, constants, bit-range
/// selections and I/O port accesses.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication (the dominant resource of the paper's examples).
    Mul,
    /// Integer division (multi-cycle capable).
    Div,
    /// Integer remainder.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT (single operand).
    Not,
    /// Arithmetic negation (single operand).
    Neg,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Comparison producing a 1-bit result.
    Cmp(CmpKind),
    /// 2-input multiplexer: `inputs[0] ? inputs[1] : inputs[2]`.
    ///
    /// Multiplexers are first-class operations because predicate conversion
    /// (Figure 4 of the paper) rewrites conditional assignments into muxes.
    Mux,
    /// Bit-range selection `x.range(hi, lo)` (e.g. `w.range(15,0)` in Figure 6).
    Slice {
        /// Most significant selected bit.
        hi: u16,
        /// Least significant selected bit.
        lo: u16,
    },
    /// Zero/sign extension or truncation to the operation's result width.
    Resize,
    /// Constant value.
    Const(i64),
    /// Read of an input port.
    Read(PortId),
    /// Write of an output port (`inputs[0]` is the written value).
    Write(PortId),
    /// Call to a pre-designed IP block / function, possibly multi-cycle.
    ///
    /// The paper motivates multi-cycle operation support by the need to bind
    /// operations to predesigned IP blocks (Section IV.B.2).
    Call {
        /// Symbolic name of the IP block.
        name: String,
        /// Fixed latency in clock cycles (0 = purely combinational).
        latency: u32,
    },
    /// A no-op used to anchor values (e.g. loop-carried variable sources).
    Pass,
}

impl OpKind {
    /// Returns `true` for operations that read or write module ports.
    pub fn is_io(&self) -> bool {
        matches!(self, OpKind::Read(_) | OpKind::Write(_))
    }

    /// Returns `true` for operations with externally observable effects,
    /// which must never be speculated or reordered across loop iterations.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, OpKind::Write(_) | OpKind::Call { .. })
    }

    /// Returns `true` for operations that occupy no datapath resource
    /// (constants, pass-throughs, slices and resizes are wiring only).
    pub fn is_free(&self) -> bool {
        matches!(
            self,
            OpKind::Const(_) | OpKind::Pass | OpKind::Slice { .. } | OpKind::Resize
        )
    }

    /// Returns the number of data inputs the kind expects, if fixed.
    pub fn arity(&self) -> Option<usize> {
        Some(match self {
            OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Rem
            | OpKind::And
            | OpKind::Or
            | OpKind::Xor
            | OpKind::Shl
            | OpKind::Shr
            | OpKind::Cmp(_) => 2,
            OpKind::Not
            | OpKind::Neg
            | OpKind::Slice { .. }
            | OpKind::Resize
            | OpKind::Write(_) => 1,
            OpKind::Mux => 3,
            OpKind::Const(_) | OpKind::Read(_) | OpKind::Pass => 0,
            OpKind::Call { .. } => return None,
        })
    }

    /// Returns `true` if the operation is commutative in its two data inputs.
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Mul
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Cmp(CmpKind::Eq)
                | OpKind::Cmp(CmpKind::Ne)
        )
    }

    /// Short mnemonic used in resource names, reports and DOT dumps.
    pub fn mnemonic(&self) -> String {
        match self {
            OpKind::Add => "add".into(),
            OpKind::Sub => "sub".into(),
            OpKind::Mul => "mul".into(),
            OpKind::Div => "div".into(),
            OpKind::Rem => "rem".into(),
            OpKind::And => "and".into(),
            OpKind::Or => "or".into(),
            OpKind::Xor => "xor".into(),
            OpKind::Not => "not".into(),
            OpKind::Neg => "neg".into(),
            OpKind::Shl => "shl".into(),
            OpKind::Shr => "shr".into(),
            OpKind::Cmp(c) => c.mnemonic().into(),
            OpKind::Mux => "mux".into(),
            OpKind::Slice { hi, lo } => format!("slice[{hi}:{lo}]"),
            OpKind::Resize => "resize".into(),
            OpKind::Const(v) => format!("const({v})"),
            OpKind::Read(p) => format!("read({p})"),
            OpKind::Write(p) => format!("write({p})"),
            OpKind::Call { name, .. } => format!("call({name})"),
            OpKind::Pass => "pass".into(),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// A DFG node: one operation of the behavioural description.
///
/// An operation carries its [`OpKind`], the bit width of its result, its data
/// inputs (see [`Signal`](crate::Signal)), the predicate under which it
/// executes (after if-conversion), and the CFG edge (control step) it was
/// associated with at elaboration time.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// What the operation computes.
    pub kind: OpKind,
    /// Result bit width.
    pub width: u16,
    /// Data inputs, in positional order.
    pub inputs: Vec<crate::dfg::Signal>,
    /// Execution predicate; `Predicate::True` for unconditional operations.
    pub predicate: Predicate,
    /// The control step the operation belongs to in the source description,
    /// if elaborated from a structured CDFG.
    pub home_edge: Option<CfgEdgeId>,
    /// Optional human-readable name (e.g. `mul1_op` in the paper's figures).
    pub name: Option<String>,
}

impl Operation {
    /// Creates an unconditional, unnamed operation.
    pub fn new(kind: OpKind, width: u16, inputs: Vec<crate::dfg::Signal>) -> Self {
        Self {
            kind,
            width,
            inputs,
            predicate: Predicate::True,
            home_edge: None,
            name: None,
        }
    }

    /// Returns the display name of the operation: its explicit name if set,
    /// otherwise the kind mnemonic.
    pub fn display_name(&self) -> String {
        self.name.clone().unwrap_or_else(|| self.kind.mnemonic())
    }

    /// Returns `true` for the elaborator's *first-iteration anchor*: an
    /// input-less `Pass` whose value is defined to be 1 on the first loop
    /// iteration and 0 afterwards. The `loopMux` pattern (paper Figure 3(b))
    /// selects the pre-loop value through this flag; execution engines give
    /// it the matching value.
    pub fn is_first_iter_anchor(&self) -> bool {
        matches!(self.kind, OpKind::Pass)
            && self.inputs.is_empty()
            && self
                .name
                .as_deref()
                .is_some_and(|n| n.ends_with("first_iter"))
    }

    /// Maximum bit width among the operation's inputs and output.
    pub fn max_width(&self) -> u16 {
        self.inputs
            .iter()
            .map(|s| s.width)
            .chain(std::iter::once(self.width))
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_matches_semantics() {
        assert!(CmpKind::Gt.eval(5, 3));
        assert!(!CmpKind::Gt.eval(3, 5));
        assert!(CmpKind::Ne.eval(1, 0));
        assert!(CmpKind::Le.eval(2, 2));
        assert!(CmpKind::Eq.eval(-4, -4));
        assert!(!CmpKind::Lt.eval(0, -1));
        assert!(CmpKind::Ge.eval(0, -1));
    }

    #[test]
    fn cmp_swapped_is_involutive_on_strict_orders() {
        for k in [
            CmpKind::Lt,
            CmpKind::Le,
            CmpKind::Gt,
            CmpKind::Ge,
            CmpKind::Eq,
            CmpKind::Ne,
        ] {
            assert_eq!(k.swapped().swapped(), k);
            // a OP b  ==  b swapped(OP) a
            assert_eq!(k.eval(3, 7), k.swapped().eval(7, 3));
        }
    }

    #[test]
    fn io_and_side_effects() {
        let p = PortId::from_raw(0);
        assert!(OpKind::Read(p).is_io());
        assert!(OpKind::Write(p).is_io());
        assert!(!OpKind::Read(p).has_side_effects());
        assert!(OpKind::Write(p).has_side_effects());
        assert!(OpKind::Call {
            name: "ip".into(),
            latency: 2
        }
        .has_side_effects());
        assert!(!OpKind::Add.is_io());
    }

    #[test]
    fn free_ops_are_wiring_only() {
        assert!(OpKind::Const(3).is_free());
        assert!(OpKind::Pass.is_free());
        assert!(OpKind::Slice { hi: 15, lo: 0 }.is_free());
        assert!(!OpKind::Mux.is_free());
        assert!(!OpKind::Add.is_free());
    }

    #[test]
    fn arity() {
        assert_eq!(OpKind::Add.arity(), Some(2));
        assert_eq!(OpKind::Mux.arity(), Some(3));
        assert_eq!(OpKind::Not.arity(), Some(1));
        assert_eq!(OpKind::Const(0).arity(), Some(0));
        assert_eq!(
            OpKind::Call {
                name: "f".into(),
                latency: 1
            }
            .arity(),
            None
        );
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(OpKind::Mul.mnemonic(), "mul");
        assert_eq!(OpKind::Cmp(CmpKind::Gt).mnemonic(), "gt");
        assert_eq!(OpKind::Cmp(CmpKind::Ne).mnemonic(), "neq");
        assert_eq!(OpKind::Slice { hi: 15, lo: 0 }.mnemonic(), "slice[15:0]");
        assert_eq!(format!("{}", OpKind::Add), "add");
    }

    #[test]
    fn operation_display_name_prefers_explicit_name() {
        let mut op = Operation::new(OpKind::Mul, 32, vec![]);
        assert_eq!(op.display_name(), "mul");
        op.name = Some("mul1_op".into());
        assert_eq!(op.display_name(), "mul1_op");
    }

    #[test]
    fn first_iter_anchor_detection() {
        let mut op = Operation::new(OpKind::Pass, 1, vec![]);
        assert!(!op.is_first_iter_anchor(), "unnamed pass is not an anchor");
        op.name = Some("do_while_first_iter".into());
        assert!(op.is_first_iter_anchor());
        op.kind = OpKind::Const(0);
        assert!(!op.is_first_iter_anchor(), "only Pass ops qualify");
    }

    #[test]
    fn commutativity() {
        assert!(OpKind::Add.is_commutative());
        assert!(OpKind::Mul.is_commutative());
        assert!(!OpKind::Sub.is_commutative());
        assert!(!OpKind::Shl.is_commutative());
        assert!(OpKind::Cmp(CmpKind::Eq).is_commutative());
        assert!(!OpKind::Cmp(CmpKind::Gt).is_commutative());
    }
}
