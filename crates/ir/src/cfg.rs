//! The control flow graph: fork/join nodes, `wait()` states, and control-step
//! edges.
//!
//! Following the paper (Section II), CFG *nodes* either serve to fork/join
//! control flow (conditionals and loops) or correspond to `wait()` calls in
//! the source; CFG *edges* are the control steps on which DFG operations are
//! placed.

use crate::error::IrError;
use crate::ids::{CfgEdgeId, CfgNodeId, LoopId};
use std::collections::{HashMap, HashSet, VecDeque};

/// What a CFG node represents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgNodeKind {
    /// Entry point of the thread.
    Entry,
    /// Exit point of the thread.
    Exit,
    /// A clock boundary — a `wait()` call in the source description.
    Wait {
        /// Optional label (`s0`, `s1`, ... in the paper's Figure 1 comments).
        label: Option<String>,
    },
    /// Control-flow fork (the `If_top` node of Figure 3).
    Fork,
    /// Control-flow join (the `If_bottom` node of Figure 3).
    Join,
    /// Loop entry (the `Loop_top` node of Figure 3).
    LoopTop {
        /// Which loop this belongs to.
        loop_id: LoopId,
    },
    /// Loop back-edge source (the `Loop_bottom` node of Figure 3).
    LoopBottom {
        /// Which loop this belongs to.
        loop_id: LoopId,
    },
}

impl CfgNodeKind {
    /// Returns `true` if the node is a clock boundary.
    pub fn is_wait(&self) -> bool {
        matches!(self, CfgNodeKind::Wait { .. })
    }
}

/// A node of the [`Cfg`].
#[derive(Clone, Debug, PartialEq)]
pub struct CfgNode {
    /// Node kind.
    pub kind: CfgNodeKind,
}

/// An edge of the [`Cfg`] — one control step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgEdge {
    /// Source node.
    pub from: CfgNodeId,
    /// Destination node.
    pub to: CfgNodeId,
    /// `true` for the "taken"/then branch out of a fork, `false` for the else
    /// branch; meaningless for other sources.
    pub branch_taken: Option<bool>,
    /// `true` for loop back edges (LoopBottom → LoopTop).
    pub back_edge: bool,
    /// Optional label for dumps.
    pub label: Option<String>,
}

/// The control flow graph of one behavioural thread.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cfg {
    nodes: Vec<CfgNode>,
    edges: Vec<CfgEdge>,
}

impl Cfg {
    /// Creates an empty CFG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node of the given kind and returns its id.
    pub fn add_node(&mut self, kind: CfgNodeKind) -> CfgNodeId {
        self.nodes.push(CfgNode { kind });
        CfgNodeId::from_raw((self.nodes.len() - 1) as u32)
    }

    /// Adds a forward control edge.
    pub fn add_edge(&mut self, from: CfgNodeId, to: CfgNodeId) -> CfgEdgeId {
        self.add_edge_full(from, to, None, false, None)
    }

    /// Adds a branch edge out of a fork node.
    pub fn add_branch_edge(&mut self, from: CfgNodeId, to: CfgNodeId, taken: bool) -> CfgEdgeId {
        self.add_edge_full(from, to, Some(taken), false, None)
    }

    /// Adds a loop back edge.
    pub fn add_back_edge(&mut self, from: CfgNodeId, to: CfgNodeId) -> CfgEdgeId {
        self.add_edge_full(from, to, None, true, None)
    }

    /// Adds an edge with all attributes spelled out.
    pub fn add_edge_full(
        &mut self,
        from: CfgNodeId,
        to: CfgNodeId,
        branch_taken: Option<bool>,
        back_edge: bool,
        label: Option<String>,
    ) -> CfgEdgeId {
        self.edges.push(CfgEdge {
            from,
            to,
            branch_taken,
            back_edge,
            label,
        });
        CfgEdgeId::from_raw((self.edges.len() - 1) as u32)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (control steps).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Access a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this CFG.
    pub fn node(&self, id: CfgNodeId) -> &CfgNode {
        &self.nodes[id.index()]
    }

    /// Access an edge.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this CFG.
    pub fn edge(&self, id: CfgEdgeId) -> &CfgEdge {
        &self.edges[id.index()]
    }

    /// Iterator over `(CfgNodeId, &CfgNode)`.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (CfgNodeId, &CfgNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (CfgNodeId::from_raw(i as u32), n))
    }

    /// Iterator over `(CfgEdgeId, &CfgEdge)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (CfgEdgeId, &CfgEdge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (CfgEdgeId::from_raw(i as u32), e))
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, node: CfgNodeId) -> Vec<CfgEdgeId> {
        self.iter_edges()
            .filter(|(_, e)| e.from == node)
            .map(|(id, _)| id)
            .collect()
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, node: CfgNodeId) -> Vec<CfgEdgeId> {
        self.iter_edges()
            .filter(|(_, e)| e.to == node)
            .map(|(id, _)| id)
            .collect()
    }

    /// The unique entry node, if present.
    pub fn entry(&self) -> Option<CfgNodeId> {
        self.iter_nodes()
            .find(|(_, n)| matches!(n.kind, CfgNodeKind::Entry))
            .map(|(id, _)| id)
    }

    /// The unique exit node, if present.
    pub fn exit(&self) -> Option<CfgNodeId> {
        self.iter_nodes()
            .find(|(_, n)| matches!(n.kind, CfgNodeKind::Exit))
            .map(|(id, _)| id)
    }

    /// Nodes reachable from `start` following forward (non-back) edges.
    pub fn reachable_from(&self, start: CfgNodeId) -> HashSet<CfgNodeId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            for e in self.out_edges(n) {
                let edge = self.edge(e);
                if edge.back_edge {
                    continue;
                }
                if seen.insert(edge.to) {
                    queue.push_back(edge.to);
                }
            }
        }
        seen
    }

    /// Returns all maximal combinational paths: sequences of consecutive
    /// forward edges between two wait/entry/exit boundaries.
    ///
    /// The paper's pass scheduler iterates over "the set of combinational
    /// paths in the CFG" (Figure 7); each path is a candidate chain of control
    /// steps that execute within consecutive clock cycles.
    pub fn combinational_paths(&self) -> Vec<Vec<CfgEdgeId>> {
        let mut paths = Vec::new();
        let boundaries: Vec<CfgNodeId> = self
            .iter_nodes()
            .filter(|(_, n)| {
                n.kind.is_wait()
                    || matches!(n.kind, CfgNodeKind::Entry | CfgNodeKind::LoopTop { .. })
            })
            .map(|(id, _)| id)
            .collect();
        for start in boundaries {
            for first in self.out_edges(start) {
                if self.edge(first).back_edge {
                    continue;
                }
                let mut path = vec![first];
                let mut cur = self.edge(first).to;
                // Extend through fork/join nodes greedily (taking the first
                // outgoing edge) until the next boundary.
                let mut guard = 0;
                while guard < self.edges.len() + 1 {
                    guard += 1;
                    let node = self.node(cur);
                    if node.kind.is_wait()
                        || matches!(
                            node.kind,
                            CfgNodeKind::Exit | CfgNodeKind::LoopBottom { .. } | CfgNodeKind::Entry
                        )
                    {
                        break;
                    }
                    let outs = self.out_edges(cur);
                    let Some(&next) = outs.iter().find(|&&e| !self.edge(e).back_edge) else {
                        break;
                    };
                    path.push(next);
                    cur = self.edge(next).to;
                }
                paths.push(path);
            }
        }
        paths
    }

    /// Checks structural invariants: edge endpoints exist, at most one entry
    /// and exit, fork nodes have exactly two forward successors, join nodes
    /// have at least two predecessors, back edges target loop tops.
    ///
    /// # Errors
    /// Returns the first violated invariant as an [`IrError`].
    pub fn validate(&self) -> Result<(), IrError> {
        for (id, e) in self.iter_edges() {
            if e.from.index() >= self.nodes.len() || e.to.index() >= self.nodes.len() {
                return Err(IrError::DanglingCfgEdge { edge: id });
            }
        }
        let entries = self
            .iter_nodes()
            .filter(|(_, n)| matches!(n.kind, CfgNodeKind::Entry))
            .count();
        if entries > 1 {
            return Err(IrError::MultipleEntries { count: entries });
        }
        for (id, n) in self.iter_nodes() {
            match n.kind {
                CfgNodeKind::Fork => {
                    let outs = self
                        .out_edges(id)
                        .into_iter()
                        .filter(|&e| !self.edge(e).back_edge)
                        .count();
                    if outs != 2 {
                        return Err(IrError::MalformedFork {
                            node: id,
                            out_degree: outs,
                        });
                    }
                }
                CfgNodeKind::Join if self.in_edges(id).len() < 2 => {
                    return Err(IrError::MalformedJoin { node: id });
                }
                _ => {}
            }
        }
        for (id, e) in self.iter_edges() {
            if e.back_edge && !matches!(self.node(e.to).kind, CfgNodeKind::LoopTop { .. }) {
                return Err(IrError::BackEdgeNotToLoopTop { edge: id });
            }
        }
        Ok(())
    }

    /// Counts wait nodes, a proxy for the number of explicit states in the
    /// source description.
    pub fn num_wait_states(&self) -> usize {
        self.iter_nodes().filter(|(_, n)| n.kind.is_wait()).count()
    }

    /// Maps each loop id to its (top, bottom) node pair, when both exist.
    pub fn loop_nodes(&self) -> HashMap<LoopId, (Option<CfgNodeId>, Option<CfgNodeId>)> {
        let mut map: HashMap<LoopId, (Option<CfgNodeId>, Option<CfgNodeId>)> = HashMap::new();
        for (id, n) in self.iter_nodes() {
            match n.kind {
                CfgNodeKind::LoopTop { loop_id } => map.entry(loop_id).or_default().0 = Some(id),
                CfgNodeKind::LoopBottom { loop_id } => map.entry(loop_id).or_default().1 = Some(id),
                _ => {}
            }
        }
        map
    }
}

/// Convenience constructor for the common "straight-line loop body" shape:
/// `LoopTop -> wait s1 -> wait s2 -> ... -> LoopBottom -> (back) LoopTop`.
///
/// Returns the CFG, the loop-body control-step edge ids in order, and the loop
/// top/bottom nodes.
pub fn straight_line_loop(
    loop_id: LoopId,
    num_states: usize,
) -> (Cfg, Vec<CfgEdgeId>, CfgNodeId, CfgNodeId) {
    let mut cfg = Cfg::new();
    let entry = cfg.add_node(CfgNodeKind::Entry);
    let top = cfg.add_node(CfgNodeKind::LoopTop { loop_id });
    cfg.add_edge(entry, top);
    let mut prev = top;
    let mut steps = Vec::new();
    for i in 0..num_states {
        let next = if i + 1 == num_states {
            cfg.add_node(CfgNodeKind::LoopBottom { loop_id })
        } else {
            cfg.add_node(CfgNodeKind::Wait {
                label: Some(format!("s{}", i + 1)),
            })
        };
        steps.push(cfg.add_edge(prev, next));
        prev = next;
    }
    let bottom = prev;
    cfg.add_back_edge(bottom, top);
    (cfg, steps, top, bottom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_loop_shape() {
        let (cfg, steps, top, bottom) = straight_line_loop(LoopId::from_raw(0), 3);
        assert_eq!(steps.len(), 3);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.out_edges(top).len(), 1);
        // loop bottom has forward in-edge and outgoing back edge
        assert_eq!(cfg.out_edges(bottom).len(), 1);
        assert!(cfg.edge(cfg.out_edges(bottom)[0]).back_edge);
        assert_eq!(cfg.num_wait_states(), 2);
    }

    #[test]
    fn fork_join_validation() {
        let mut cfg = Cfg::new();
        let entry = cfg.add_node(CfgNodeKind::Entry);
        let fork = cfg.add_node(CfgNodeKind::Fork);
        let join = cfg.add_node(CfgNodeKind::Join);
        let exit = cfg.add_node(CfgNodeKind::Exit);
        cfg.add_edge(entry, fork);
        cfg.add_branch_edge(fork, join, true);
        // only one branch -> malformed fork
        assert!(matches!(cfg.validate(), Err(IrError::MalformedFork { .. })));
        cfg.add_branch_edge(fork, join, false);
        cfg.add_edge(join, exit);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn back_edge_must_target_loop_top() {
        let mut cfg = Cfg::new();
        let a = cfg.add_node(CfgNodeKind::Entry);
        let b = cfg.add_node(CfgNodeKind::Exit);
        cfg.add_edge(a, b);
        cfg.add_back_edge(b, a);
        assert!(matches!(
            cfg.validate(),
            Err(IrError::BackEdgeNotToLoopTop { .. })
        ));
    }

    #[test]
    fn reachability_ignores_back_edges() {
        let (cfg, _, top, bottom) = straight_line_loop(LoopId::from_raw(0), 2);
        let reach = cfg.reachable_from(top);
        assert!(reach.contains(&bottom));
        let reach_from_bottom = cfg.reachable_from(bottom);
        assert!(!reach_from_bottom.contains(&top));
    }

    #[test]
    fn combinational_paths_of_straight_line_loop() {
        let (cfg, steps, _, _) = straight_line_loop(LoopId::from_raw(0), 3);
        let paths = cfg.combinational_paths();
        // Each wait boundary starts a path: loop_top->s1, s1->s2, s2->bottom.
        assert!(!paths.is_empty());
        let all_edges: HashSet<CfgEdgeId> = paths.iter().flatten().copied().collect();
        for s in steps {
            assert!(
                all_edges.contains(&s),
                "control step {s} missing from paths"
            );
        }
    }

    #[test]
    fn multiple_entries_rejected() {
        let mut cfg = Cfg::new();
        cfg.add_node(CfgNodeKind::Entry);
        cfg.add_node(CfgNodeKind::Entry);
        assert!(matches!(
            cfg.validate(),
            Err(IrError::MultipleEntries { .. })
        ));
    }

    #[test]
    fn loop_nodes_map() {
        let (cfg, _, top, bottom) = straight_line_loop(LoopId::from_raw(7), 2);
        let map = cfg.loop_nodes();
        assert_eq!(map[&LoopId::from_raw(7)], (Some(top), Some(bottom)));
    }
}
