//! Dense, arena-style maps keyed by [`OpId`].
//!
//! Operation ids are assigned densely by the owning [`Dfg`](crate::Dfg), so
//! any per-operation table can be a flat `Vec` indexed by `OpId::index()`
//! instead of a `HashMap<OpId, _>`: a lookup is one bounds-checked array
//! access with no hashing, and iteration is cache-linear in id order — which
//! is also the deterministic order every consumer wants. [`DenseOpMap`] is
//! the reusable, typed form of that layout (the modulo-scheduling baseline
//! builds its per-op tables on it); the scheduler engine in `hls-sched`
//! inlines the same `Vec`-indexed-by-`OpId::index()` pattern for its
//! multi-field pass state.

use crate::ids::OpId;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense map from [`OpId`] to `T`, backed by a flat `Vec`.
///
/// All operations of the owning DFG are present; "absent" entries are
/// modelled by `T`'s default (typically `Option<V>`). Cloning is a single
/// `memcpy`-like `Vec` clone, which is what makes per-state scheduler
/// snapshots cheap.
#[derive(Clone, PartialEq)]
pub struct DenseOpMap<T> {
    data: Vec<T>,
}

impl<T: Clone> DenseOpMap<T> {
    /// Creates a map for `num_ops` operations, every entry set to `fill`.
    pub fn filled(num_ops: usize, fill: T) -> Self {
        DenseOpMap {
            data: vec![fill; num_ops],
        }
    }
}

impl<T: Default> DenseOpMap<T> {
    /// Creates a map for `num_ops` operations with default entries.
    pub fn new(num_ops: usize) -> Self {
        DenseOpMap {
            data: std::iter::repeat_with(T::default).take(num_ops).collect(),
        }
    }
}

impl<T> DenseOpMap<T> {
    /// Builds a map by evaluating `f` for every operation id.
    pub fn from_fn(num_ops: usize, mut f: impl FnMut(OpId) -> T) -> Self {
        DenseOpMap {
            data: (0..num_ops as u32).map(|i| f(OpId::from_raw(i))).collect(),
        }
    }

    /// Number of entries (the number of operations).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reference to the entry for `op`, or `None` if out of range.
    pub fn get(&self, op: OpId) -> Option<&T> {
        self.data.get(op.index())
    }

    /// Iterator over `(OpId, &T)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(|(i, t)| (OpId::from_raw(i as u32), t))
    }

    /// Iterator over mutable entries in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (OpId, &mut T)> {
        self.data
            .iter_mut()
            .enumerate()
            .map(|(i, t)| (OpId::from_raw(i as u32), t))
    }

    /// The raw backing slice, in id order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> Index<OpId> for DenseOpMap<T> {
    type Output = T;
    fn index(&self, op: OpId) -> &T {
        &self.data[op.index()]
    }
}

impl<T> IndexMut<OpId> for DenseOpMap<T> {
    fn index_mut(&mut self, op: OpId) -> &mut T {
        &mut self.data[op.index()]
    }
}

impl<T: fmt::Debug> fmt::Debug for DenseOpMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_index() {
        let mut m = DenseOpMap::filled(3, 0u32);
        m[OpId::from_raw(1)] = 7;
        assert_eq!(m[OpId::from_raw(0)], 0);
        assert_eq!(m[OpId::from_raw(1)], 7);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn default_entries_are_none() {
        let m: DenseOpMap<Option<u32>> = DenseOpMap::new(2);
        assert_eq!(m[OpId::from_raw(0)], None);
        assert_eq!(m.get(OpId::from_raw(5)), None, "out of range is None");
    }

    #[test]
    fn from_fn_and_iter_in_id_order() {
        let m = DenseOpMap::from_fn(4, |id| id.index() * 10);
        let pairs: Vec<(OpId, usize)> = m.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(
            pairs,
            vec![
                (OpId::from_raw(0), 0),
                (OpId::from_raw(1), 10),
                (OpId::from_raw(2), 20),
                (OpId::from_raw(3), 30),
            ]
        );
    }

    #[test]
    fn clone_is_independent() {
        let mut a = DenseOpMap::filled(2, 1i64);
        let b = a.clone();
        a[OpId::from_raw(0)] = 9;
        assert_eq!(b[OpId::from_raw(0)], 1);
        assert_eq!(a.as_slice(), &[9, 1]);
    }

    #[test]
    fn iter_mut_updates() {
        let mut m = DenseOpMap::filled(3, 1u32);
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        assert_eq!(m.as_slice(), &[2, 2, 2]);
    }
}
