//! Graph analyses on the DFG: strongly connected components, dependence
//! levels (untimed ASAP/ALAP), and recurrence (minimum initiation interval)
//! bounds.
//!
//! The pipelining approach of the paper hinges on the observation that
//! *inter-iteration dependencies are represented by cycles that form strongly
//! connected components in the DFG of a loop* (Section V, requirement a), and
//! that preserving causality requires all operations of each SCC to be
//! scheduled within `II` states. The [`sccs`] function computes those
//! components (Tarjan's algorithm over the dependence graph including
//! loop-carried edges); [`recurrence_min_ii`] derives the classic
//! recurrence-constrained lower bound on the initiation interval.

use crate::dfg::Dfg;
use crate::ids::OpId;
use std::collections::HashMap;

/// A strongly connected component of the DFG dependence graph (including
/// loop-carried edges). Components with a single operation and no self loop
/// are not reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scc {
    /// Operations in the component.
    pub ops: Vec<OpId>,
    /// Total iteration distance around the shortest cycle through the
    /// component (sum of `distance` attributes), used for recurrence bounds.
    pub total_distance: u32,
}

impl Scc {
    /// Number of operations in the component.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the component is empty (never produced by [`sccs`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns `true` if the component contains the operation.
    pub fn contains(&self, op: OpId) -> bool {
        self.ops.contains(&op)
    }
}

/// Computes the non-trivial strongly connected components of the dependence
/// graph of `dfg`, *including* loop-carried (distance ≥ 1) edges.
///
/// A component is non-trivial if it has more than one operation, or a single
/// operation with a self loop (e.g. `acc = acc + x` expressed as a
/// loop-carried self-dependency).
pub fn sccs(dfg: &Dfg) -> Vec<Scc> {
    let n = dfg.num_ops();
    // adjacency including loop-carried edges
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for dep in dfg.data_deps() {
        if dep.from == dep.to {
            self_loop[dep.from.index()] = true;
        }
        adj[dep.from.index()].push(dep.to.index());
    }

    // Iterative Tarjan's algorithm.
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        child: usize,
    }

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack = vec![Frame { v: start, child: 0 }];
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = call_stack.last_mut() {
            let v = frame.v;
            if frame.child < adj[v].len() {
                let w = adj[v][frame.child];
                frame.child += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push(Frame { v: w, child: 0 });
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(parent) = call_stack.last() {
                    lowlink[parent.v] = lowlink[parent.v].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }

    let mut out = Vec::new();
    for comp in components {
        if comp.len() == 1 && !self_loop[comp[0]] {
            continue;
        }
        let member: Vec<OpId> = {
            let mut m: Vec<OpId> = comp.iter().map(|&i| OpId::from_raw(i as u32)).collect();
            m.sort();
            m
        };
        // Total distance: sum of loop-carried distances on edges internal to
        // the component (a proxy for the distance around its cycles).
        let set: std::collections::HashSet<OpId> = member.iter().copied().collect();
        let total_distance = dfg
            .data_deps()
            .iter()
            .filter(|d| set.contains(&d.from) && set.contains(&d.to))
            .map(|d| d.distance)
            .sum();
        out.push(Scc {
            ops: member,
            total_distance,
        });
    }
    // Deterministic order: by smallest member id.
    out.sort_by_key(|c| c.ops[0]);
    out
}

/// Untimed ASAP levels: the length (in dependence hops) of the longest
/// distance-0 dependence chain ending at each operation.
pub fn asap_levels(dfg: &Dfg) -> HashMap<OpId, u32> {
    let order = dfg
        .topo_order()
        .expect("asap_levels requires an acyclic intra-iteration dependence graph");
    let mut level: HashMap<OpId, u32> = HashMap::new();
    for id in order {
        let l = dfg
            .preds(id)
            .into_iter()
            .map(|p| level.get(&p).copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
        level.insert(id, l);
    }
    level
}

/// Untimed ALAP levels for a given total depth: `depth - longest chain from
/// the operation to any sink`.
pub fn alap_levels(dfg: &Dfg, depth: u32) -> HashMap<OpId, u32> {
    let order = dfg
        .topo_order()
        .expect("alap_levels requires an acyclic intra-iteration dependence graph");
    let mut below: HashMap<OpId, u32> = HashMap::new();
    for &id in order.iter().rev() {
        let l = dfg
            .succs(id)
            .into_iter()
            .map(|s| below.get(&s).copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
        below.insert(id, l);
    }
    order
        .into_iter()
        .map(|id| (id, depth.saturating_sub(below[&id])))
        .collect()
}

/// Critical-path length of the intra-iteration dependence graph, in
/// dependence hops (number of operations on the longest chain).
pub fn critical_path_len(dfg: &Dfg) -> u32 {
    asap_levels(dfg)
        .values()
        .copied()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

/// Recurrence-constrained minimum initiation interval, in *operation levels*
/// per iteration distance, computed per SCC as
/// `ceil(ops_on_longest_internal_chain / total_distance)`.
///
/// This is an untimed structural bound; the timing-aware bound (accounting
/// for operation delays and the clock period) is computed by the scheduler.
/// The paper argues the designer fixes II anyway (Section V, condition 1);
/// this bound is used to reject infeasible user requests early.
pub fn recurrence_min_ii(dfg: &Dfg) -> u32 {
    let comps = sccs(dfg);
    let mut min_ii = 1u32;
    for c in comps {
        if c.total_distance == 0 {
            // No iteration distance inside the SCC would mean a combinational
            // cycle; validation rejects that elsewhere. Skip defensively.
            continue;
        }
        // Longest chain inside the component, approximated by component size
        // (every op on the cycle executes once per iteration).
        let ii = (c.ops.len() as u32).div_ceil(c.total_distance);
        min_ii = min_ii.max(ii);
    }
    min_ii
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{PortDirection, Signal};
    use crate::op::{CmpKind, OpKind};

    /// Builds the accumulator pattern of the paper's Figure 3(b):
    /// `aver = mux(gt, aver*scale, aver0); aver0 = loopMux(aver@-1) + delta`.
    fn accumulator_dfg() -> (Dfg, Vec<OpId>) {
        let mut dfg = Dfg::new();
        let mask = dfg.add_port("mask", PortDirection::Input, 32);
        let chrome = dfg.add_port("chrome", PortDirection::Input, 32);
        let scale = dfg.add_port("scale", PortDirection::Input, 32);
        let th = dfg.add_port("th", PortDirection::Input, 32);

        let mask_rd = dfg.add_op(OpKind::Read(mask), 32, vec![]);
        let chrome_rd = dfg.add_op(OpKind::Read(chrome), 32, vec![]);
        let scale_rd = dfg.add_op(OpKind::Read(scale), 32, vec![]);
        let th_rd = dfg.add_op(OpKind::Read(th), 32, vec![]);

        let mul1 = dfg.add_op(
            OpKind::Mul,
            32,
            vec![Signal::op(mask_rd), Signal::op(chrome_rd)],
        );
        // loopMux selects 0 on the first iteration, previous aver otherwise —
        // represented as a mux whose second input is the loop-carried MUX
        // output; ids are patched after creating the final MUX.
        let loop_mux = dfg.add_op(
            OpKind::Mux,
            32,
            vec![
                Signal::constant(1, 1),
                Signal::constant(0, 32),
                Signal::constant(0, 32),
            ],
        );
        let add = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op(loop_mux), Signal::op(mul1)],
        );
        let gt = dfg.add_op(
            OpKind::Cmp(CmpKind::Gt),
            1,
            vec![Signal::op(add), Signal::op(th_rd)],
        );
        let mul2 = dfg.add_op(OpKind::Mul, 32, vec![Signal::op(add), Signal::op(scale_rd)]);
        let mux = dfg.add_op(
            OpKind::Mux,
            32,
            vec![Signal::op(gt), Signal::op(mul2), Signal::op(add)],
        );
        // close the recurrence: loopMux input 2 is MUX from the previous iteration
        dfg.op_mut(loop_mux).inputs[2] = Signal::carried(mux, 32, 1);

        (dfg, vec![loop_mux, add, mul2, mux, gt])
    }

    #[test]
    fn scc_of_accumulator_matches_paper() {
        let (dfg, ids) = accumulator_dfg();
        assert!(dfg.validate().is_ok());
        let comps = sccs(&dfg);
        assert_eq!(comps.len(), 1, "exactly one SCC expected");
        let scc = &comps[0];
        // The paper lists the SCC as {loopMux, add_op, mul2_op, MUX}; gt_op is
        // also on the cycle through the MUX select input (the paper's prose
        // simply omits it), so we expect all five operations here.
        let loop_mux = ids[0];
        let add = ids[1];
        let mul2 = ids[2];
        let mux = ids[3];
        let gt = ids[4];
        assert!(scc.contains(loop_mux));
        assert!(scc.contains(add));
        assert!(scc.contains(mul2));
        assert!(scc.contains(mux));
        assert!(scc.contains(gt));
        assert_eq!(scc.len(), 5);
        assert_eq!(scc.total_distance, 1);
    }

    #[test]
    fn self_loop_accumulator_is_an_scc() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 16);
        let r = dfg.add_op(OpKind::Read(p), 16, vec![]);
        let acc = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(r, 16), Signal::op_w(r, 16)],
        );
        dfg.op_mut(acc).inputs[1] = Signal::carried(acc, 16, 1);
        let comps = sccs(&dfg);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].ops, vec![acc]);
        assert_eq!(comps[0].total_distance, 1);
    }

    #[test]
    fn dag_has_no_sccs() {
        let mut dfg = Dfg::new();
        let a = dfg.add_op(OpKind::Const(1), 8, vec![]);
        let b = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(a, 8), Signal::constant(1, 8)],
        );
        let _c = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(b, 8), Signal::constant(2, 8)],
        );
        assert!(sccs(&dfg).is_empty());
    }

    #[test]
    fn asap_alap_levels_bound_each_other() {
        let (dfg, _) = accumulator_dfg();
        let asap = asap_levels(&dfg);
        let depth = critical_path_len(&dfg) - 1;
        let alap = alap_levels(&dfg, depth);
        for id in dfg.op_ids() {
            assert!(
                asap[&id] <= alap[&id],
                "asap {} must not exceed alap {} for {id}",
                asap[&id],
                alap[&id]
            );
        }
    }

    #[test]
    fn critical_path_of_chain() {
        let mut dfg = Dfg::new();
        let mut prev = dfg.add_op(OpKind::Const(0), 8, vec![]);
        for _ in 0..5 {
            prev = dfg.add_op(
                OpKind::Add,
                8,
                vec![Signal::op_w(prev, 8), Signal::constant(1, 8)],
            );
        }
        assert_eq!(critical_path_len(&dfg), 6);
    }

    #[test]
    fn recurrence_min_ii_grows_with_cycle_length() {
        // acc = ((acc@-1 + 1) + 2) + 3 : a 3-op cycle with distance 1 → II ≥ 3
        let mut dfg = Dfg::new();
        let a = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::constant(0, 16), Signal::constant(1, 16)],
        );
        let b = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(a, 16), Signal::constant(2, 16)],
        );
        let c = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(b, 16), Signal::constant(3, 16)],
        );
        dfg.op_mut(a).inputs[0] = Signal::carried(c, 16, 1);
        assert_eq!(recurrence_min_ii(&dfg), 3);
    }

    #[test]
    fn recurrence_min_ii_of_dag_is_one() {
        let mut dfg = Dfg::new();
        let a = dfg.add_op(OpKind::Const(1), 8, vec![]);
        dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(a, 8), Signal::constant(1, 8)],
        );
        assert_eq!(recurrence_min_ii(&dfg), 1);
    }

    #[test]
    fn larger_distance_relaxes_recurrence() {
        // 4-op cycle at distance 2 → II ≥ 2
        let mut dfg = Dfg::new();
        let a = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::constant(0, 16), Signal::constant(1, 16)],
        );
        let b = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(a, 16), Signal::constant(1, 16)],
        );
        let c = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(b, 16), Signal::constant(1, 16)],
        );
        let d = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(c, 16), Signal::constant(1, 16)],
        );
        dfg.op_mut(a).inputs[0] = Signal::carried(d, 16, 2);
        assert_eq!(recurrence_min_ii(&dfg), 2);
    }
}
