//! Execution predicates produced by predicate conversion (if-conversion).
//!
//! The paper's branch predication transformation (Figure 4) replaces fork/join
//! regions in the CFG by a straight-line segment with *predicates enabling
//! operations*. A [`Predicate`] is a small boolean expression over condition
//! operations (1-bit DFG values). Two predicated operations are **mutually
//! exclusive** when their predicates can never be true simultaneously; the
//! scheduler exploits this when computing resource lower bounds and when
//! sharing resources inside one control step.

use crate::ids::OpId;
use std::collections::BTreeMap;
use std::fmt;

/// A guard expression over 1-bit condition values.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Always executes.
    #[default]
    True,
    /// Executes when the condition op evaluates to 1.
    Cond(OpId),
    /// Executes when the condition op evaluates to 0.
    NotCond(OpId),
    /// Conjunction of sub-predicates (nested if-conversion).
    And(Vec<Predicate>),
}

impl Predicate {
    /// Builds the conjunction of two predicates, flattening nested `And`s and
    /// simplifying `True` away.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Returns the negation of a *literal* predicate.
    ///
    /// `And` predicates cannot be negated without introducing disjunction, so
    /// this returns `None` for them; callers fall back to `Predicate::True`
    /// (conservatively "may execute").
    pub fn negated(&self) -> Option<Predicate> {
        match self {
            Predicate::True => None,
            Predicate::Cond(c) => Some(Predicate::NotCond(*c)),
            Predicate::NotCond(c) => Some(Predicate::Cond(*c)),
            Predicate::And(_) => None,
        }
    }

    /// Returns `true` if the predicate is the constant `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, Predicate::True)
    }

    /// Collects the literals of the predicate as `(condition op, polarity)`
    /// pairs. A polarity of `true` means the condition must be 1.
    ///
    /// If the same condition appears with both polarities the predicate is
    /// unsatisfiable; [`Predicate::is_satisfiable`] reports this.
    pub fn literals(&self) -> BTreeMap<OpId, Vec<bool>> {
        let mut out: BTreeMap<OpId, Vec<bool>> = BTreeMap::new();
        self.collect_literals(&mut out);
        out
    }

    fn collect_literals(&self, out: &mut BTreeMap<OpId, Vec<bool>>) {
        match self {
            Predicate::True => {}
            Predicate::Cond(c) => out.entry(*c).or_default().push(true),
            Predicate::NotCond(c) => out.entry(*c).or_default().push(false),
            Predicate::And(ps) => {
                for p in ps {
                    p.collect_literals(out);
                }
            }
        }
    }

    /// Returns `false` if the predicate contains contradictory literals
    /// (e.g. `c && !c`), which means the guarded operation can never execute.
    pub fn is_satisfiable(&self) -> bool {
        self.literals()
            .values()
            .all(|pols| !(pols.contains(&true) && pols.contains(&false)))
    }

    /// Conservatively decides whether two predicates are **mutually
    /// exclusive**: they are if some condition op appears with opposite
    /// polarities in the two predicates. Returning `false` only means "may
    /// overlap".
    ///
    /// This is the mutual-exclusivity test the paper's resource lower bound
    /// uses to avoid over-counting operations coming from the two branches of
    /// a converted `if` (Section IV.A).
    pub fn mutually_exclusive(&self, other: &Predicate) -> bool {
        if self.is_true() || other.is_true() {
            return false;
        }
        let a = self.literals();
        let b = other.literals();
        for (cond, pols_a) in &a {
            if let Some(pols_b) = b.get(cond) {
                let a_true = pols_a.contains(&true);
                let a_false = pols_a.contains(&false);
                let b_true = pols_b.contains(&true);
                let b_false = pols_b.contains(&false);
                if (a_true && b_false && !a_false && !b_true)
                    || (a_false && b_true && !a_true && !b_false)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Evaluates the predicate under an assignment of condition values.
    /// Missing conditions default to `true` (the operation may execute).
    pub fn eval(&self, assignment: &BTreeMap<OpId, bool>) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cond(c) => *assignment.get(c).unwrap_or(&true),
            Predicate::NotCond(c) => !*assignment.get(c).unwrap_or(&false),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(assignment)),
        }
    }

    /// Condition operations referenced by the predicate.
    pub fn condition_ops(&self) -> Vec<OpId> {
        self.literals().keys().copied().collect()
    }

    /// Redirects every literal over condition `from` to condition `to`,
    /// preserving polarity. Used when an optimization pass merges two
    /// structurally identical condition operations.
    pub fn replace_cond(&mut self, from: OpId, to: OpId) {
        match self {
            Predicate::True => {}
            Predicate::Cond(c) | Predicate::NotCond(c) => {
                if *c == from {
                    *c = to;
                }
            }
            Predicate::And(ps) => {
                for p in ps {
                    p.replace_cond(from, to);
                }
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "1"),
            Predicate::Cond(c) => write!(f, "{c}"),
            Predicate::NotCond(c) => write!(f, "!{c}"),
            Predicate::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", parts.join(" & "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> OpId {
        OpId::from_raw(i)
    }

    #[test]
    fn and_simplifies_true() {
        let p = Predicate::True.and(Predicate::Cond(c(0)));
        assert_eq!(p, Predicate::Cond(c(0)));
        let q = Predicate::Cond(c(0)).and(Predicate::True);
        assert_eq!(q, Predicate::Cond(c(0)));
    }

    #[test]
    fn and_flattens() {
        let p = Predicate::Cond(c(0))
            .and(Predicate::NotCond(c(1)))
            .and(Predicate::Cond(c(2)));
        match p {
            Predicate::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn negation_of_literals() {
        assert_eq!(
            Predicate::Cond(c(0)).negated(),
            Some(Predicate::NotCond(c(0)))
        );
        assert_eq!(
            Predicate::NotCond(c(0)).negated(),
            Some(Predicate::Cond(c(0)))
        );
        assert_eq!(Predicate::True.negated(), None);
    }

    #[test]
    fn mutual_exclusion_of_branch_arms() {
        let then_arm = Predicate::Cond(c(5));
        let else_arm = Predicate::NotCond(c(5));
        assert!(then_arm.mutually_exclusive(&else_arm));
        assert!(else_arm.mutually_exclusive(&then_arm));
        assert!(!then_arm.mutually_exclusive(&then_arm));
        assert!(!then_arm.mutually_exclusive(&Predicate::True));
    }

    #[test]
    fn nested_predicates_mutual_exclusion() {
        // if (a) { if (b) X else Y }
        let x = Predicate::Cond(c(0)).and(Predicate::Cond(c(1)));
        let y = Predicate::Cond(c(0)).and(Predicate::NotCond(c(1)));
        assert!(x.mutually_exclusive(&y));
        // X is not exclusive with the outer branch predicate itself.
        assert!(!x.mutually_exclusive(&Predicate::Cond(c(0))));
    }

    #[test]
    fn satisfiability() {
        let contradiction = Predicate::Cond(c(0)).and(Predicate::NotCond(c(0)));
        assert!(!contradiction.is_satisfiable());
        assert!(Predicate::True.is_satisfiable());
        assert!(Predicate::Cond(c(0)).is_satisfiable());
    }

    #[test]
    fn eval_under_assignment() {
        let mut asg = BTreeMap::new();
        asg.insert(c(0), true);
        asg.insert(c(1), false);
        assert!(Predicate::Cond(c(0)).eval(&asg));
        assert!(!Predicate::Cond(c(1)).eval(&asg));
        assert!(Predicate::NotCond(c(1)).eval(&asg));
        let both = Predicate::Cond(c(0)).and(Predicate::NotCond(c(1)));
        assert!(both.eval(&asg));
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::Cond(c(0)).and(Predicate::NotCond(c(1)));
        assert_eq!(p.to_string(), "(op0 & !op1)");
        assert_eq!(Predicate::True.to_string(), "1");
    }

    #[test]
    fn condition_ops_are_sorted_unique() {
        let p = Predicate::Cond(c(3))
            .and(Predicate::NotCond(c(1)))
            .and(Predicate::Cond(c(3)));
        assert_eq!(p.condition_ops(), vec![c(1), c(3)]);
    }
}
