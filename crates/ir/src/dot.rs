//! Graphviz (DOT) dumps of the IR, for debugging and documentation.

use crate::cdfg::Cdfg;
use crate::cfg::{Cfg, CfgNodeKind};
use crate::dfg::Dfg;

/// Renders the DFG as a DOT digraph. Loop-carried dependencies are drawn as
/// dashed edges labelled with their iteration distance.
pub fn dfg_to_dot(dfg: &Dfg) -> String {
    let mut out =
        String::from("digraph dfg {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for (id, op) in dfg.iter_ops() {
        let label = format!(
            "{}\\n{} w{}",
            op.display_name(),
            op.kind.mnemonic(),
            op.width
        );
        let extra = if op.predicate.is_true() {
            String::new()
        } else {
            format!("\\n[{}]", op.predicate)
        };
        out.push_str(&format!(
            "  {} [label=\"{}{}\"];\n",
            id.index(),
            label,
            extra
        ));
    }
    for dep in dfg.data_deps() {
        if dep.distance == 0 {
            out.push_str(&format!("  {} -> {};\n", dep.from.index(), dep.to.index()));
        } else {
            out.push_str(&format!(
                "  {} -> {} [style=dashed, label=\"-{}\"];\n",
                dep.from.index(),
                dep.to.index(),
                dep.distance
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the CFG as a DOT digraph. Control-step edges are labelled with
/// their id so they can be cross-referenced with scheduling reports.
pub fn cfg_to_dot(cfg: &Cfg) -> String {
    let mut out = String::from("digraph cfg {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n");
    for (id, node) in cfg.iter_nodes() {
        let (label, shape) = match &node.kind {
            CfgNodeKind::Entry => ("entry".to_string(), "oval"),
            CfgNodeKind::Exit => ("exit".to_string(), "oval"),
            CfgNodeKind::Wait { label } => (
                label
                    .clone()
                    .unwrap_or_else(|| format!("wait{}", id.index())),
                "box",
            ),
            CfgNodeKind::Fork => ("fork".to_string(), "diamond"),
            CfgNodeKind::Join => ("join".to_string(), "diamond"),
            CfgNodeKind::LoopTop { loop_id } => (format!("loop_top({loop_id})"), "house"),
            CfgNodeKind::LoopBottom { loop_id } => (format!("loop_bottom({loop_id})"), "invhouse"),
        };
        out.push_str(&format!(
            "  {} [label=\"{}\", shape={}];\n",
            id.index(),
            label,
            shape
        ));
    }
    for (id, edge) in cfg.iter_edges() {
        let style = if edge.back_edge { ", style=dashed" } else { "" };
        let branch = match edge.branch_taken {
            Some(true) => " T",
            Some(false) => " F",
            None => "",
        };
        out.push_str(&format!(
            "  {} -> {} [label=\"{}{}\"{}];\n",
            edge.from.index(),
            edge.to.index(),
            id,
            branch,
            style
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders both graphs of a [`Cdfg`] side by side (two clusters).
pub fn cdfg_to_dot(cdfg: &Cdfg) -> String {
    let dfg = dfg_to_dot(&cdfg.dfg);
    let cfg = cfg_to_dot(&cdfg.cfg);
    // merge into one document with subgraph clusters
    let dfg_body: String = dfg
        .lines()
        .skip(1)
        .take_while(|l| *l != "}")
        .map(|l| format!("  {l}\n"))
        .collect();
    let cfg_body: String = cfg
        .lines()
        .skip(1)
        .take_while(|l| *l != "}")
        .map(|l| l.replace(" -> ", "c -> c").replace("  ", "  c") + "\n")
        .collect();
    format!(
        "digraph cdfg {{\n  label=\"{}\";\n  subgraph cluster_dfg {{\n    label=\"DFG\";\n{dfg_body}  }}\n  subgraph cluster_cfg {{\n    label=\"CFG\";\n{cfg_body}  }}\n}}\n",
        cdfg.name
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::straight_line_loop;
    use crate::dfg::{PortDirection, Signal};
    use crate::ids::LoopId;
    use crate::op::OpKind;

    #[test]
    fn dfg_dot_contains_ops_and_edges() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 8);
        let r = dfg.add_op(OpKind::Read(p), 8, vec![]);
        let a = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(r, 8), Signal::constant(1, 8)],
        );
        dfg.op_mut(a).inputs[1] = Signal::carried(a, 8, 1);
        let dot = dfg_to_dot(&dfg);
        assert!(dot.starts_with("digraph dfg {"));
        assert!(dot.contains("add"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn cfg_dot_contains_nodes() {
        let (cfg, ..) = straight_line_loop(LoopId::from_raw(0), 2);
        let dot = cfg_to_dot(&cfg);
        assert!(dot.contains("loop_top"));
        assert!(dot.contains("loop_bottom"));
        assert!(dot.contains("style=dashed"), "back edge should be dashed");
    }

    #[test]
    fn cdfg_dot_has_two_clusters() {
        let mut cdfg = Cdfg::new("demo");
        let (cfg, ..) = straight_line_loop(LoopId::from_raw(0), 1);
        cdfg.cfg = cfg;
        cdfg.dfg.add_op(OpKind::Const(1), 8, vec![]);
        let dot = cdfg_to_dot(&cdfg);
        assert!(dot.contains("cluster_dfg"));
        assert!(dot.contains("cluster_cfg"));
        assert!(dot.contains("demo"));
    }
}
