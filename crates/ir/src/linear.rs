//! Linearized loop bodies: the straight-line, predicated form the scheduler
//! consumes.
//!
//! Step I.1 of the paper's pipelining procedure converts the loop into "a
//! straight-line sequence of nodes in the CFG" by balancing fork/join regions
//! and applying full predicate conversion. The same form is also what the
//! non-pipelined pass scheduler operates on — which is precisely the paper's
//! point: one scheduling engine for both micro-architectures.
//!
//! A [`LinearBody`] owns a [`Dfg`] whose operations are all predicated (no
//! control flow left), plus scheduling-relevant metadata: the source state of
//! each operation, I/O pinning constraints and the loop exit condition.

use crate::dfg::Dfg;
use crate::error::IrError;
use crate::ids::{OpId, StateIdx};
use crate::op::OpKind;
use std::collections::{BTreeMap, HashMap};

/// How an operation is tied to a control step by user/source constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinnedState {
    /// Must be scheduled exactly in this state (cycle-accurate I/O protocol).
    Exact(StateIdx),
    /// Must be scheduled in this state or later (loosely timed I/O).
    AtOrAfter(StateIdx),
}

impl PinnedState {
    /// Earliest state allowed by the pin.
    pub fn earliest(self) -> StateIdx {
        match self {
            PinnedState::Exact(s) | PinnedState::AtOrAfter(s) => s,
        }
    }

    /// Latest state allowed by the pin, if bounded.
    pub fn latest(self) -> Option<StateIdx> {
        match self {
            PinnedState::Exact(s) => Some(s),
            PinnedState::AtOrAfter(_) => None,
        }
    }

    /// Whether `state` satisfies the pin.
    pub fn allows(self, state: StateIdx) -> bool {
        match self {
            PinnedState::Exact(s) => state == s,
            PinnedState::AtOrAfter(s) => state >= s,
        }
    }
}

/// A straight-line (fully predicated) loop body ready for scheduling.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinearBody {
    /// Design / loop name.
    pub name: String,
    /// The predicated data flow graph.
    pub dfg: Dfg,
    /// Number of control steps the body occupies in the *source* description
    /// (the number of `wait()`-delimited states). The scheduler may add
    /// states beyond this when relaxing constraints.
    pub source_states: u32,
    /// The state each operation belongs to in the source description.
    pub source_state: HashMap<OpId, u32>,
    /// Scheduling pins (typically on I/O operations).
    pub pins: HashMap<OpId, PinnedState>,
    /// Operation computing the loop exit condition, if any.
    pub exit_condition: Option<OpId>,
}

impl LinearBody {
    /// Wraps a DFG as a single-source-state linear body.
    pub fn from_dfg(name: impl Into<String>, dfg: Dfg) -> Self {
        LinearBody {
            name: name.into(),
            dfg,
            source_states: 1,
            source_state: HashMap::new(),
            pins: HashMap::new(),
            exit_condition: None,
        }
    }

    /// Records the source state of an operation.
    pub fn set_source_state(&mut self, op: OpId, state: u32) {
        self.source_state.insert(op, state);
        if state + 1 > self.source_states {
            self.source_states = state + 1;
        }
    }

    /// Pins an operation to a control step.
    pub fn pin(&mut self, op: OpId, pin: PinnedState) {
        self.pins.insert(op, pin);
    }

    /// Returns the pin of an operation, if any.
    pub fn pin_of(&self, op: OpId) -> Option<PinnedState> {
        self.pins.get(&op).copied()
    }

    /// Number of operations in the body.
    pub fn num_ops(&self) -> usize {
        self.dfg.num_ops()
    }

    /// Sequential-ordering dependencies between accesses to the same port.
    ///
    /// Two reads of the same port in different source states, or any two
    /// writes of the same port, must not be reordered; this returns the
    /// implied `(earlier, later)` pairs in source order. The scheduler treats
    /// them as extra (distance-0) precedence edges.
    pub fn io_order_deps(&self) -> Vec<(OpId, OpId)> {
        let mut by_port: BTreeMap<(u32, bool), Vec<OpId>> = BTreeMap::new();
        for (id, op) in self.dfg.iter_ops() {
            match op.kind {
                OpKind::Read(p) => by_port
                    .entry((p.index() as u32, false))
                    .or_default()
                    .push(id),
                OpKind::Write(p) => by_port
                    .entry((p.index() as u32, true))
                    .or_default()
                    .push(id),
                _ => {}
            }
        }
        let mut deps = Vec::new();
        for ((_, is_write), mut ops) in by_port {
            // order accesses by source state, then id
            ops.sort_by_key(|&id| (self.source_state.get(&id).copied().unwrap_or(0), id));
            for pair in ops.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let sa = self.source_state.get(&a).copied().unwrap_or(0);
                let sb = self.source_state.get(&b).copied().unwrap_or(0);
                // Reads in the same source state may be reordered freely;
                // writes never.
                if is_write || sa != sb {
                    deps.push((a, b));
                }
            }
        }
        deps
    }

    /// Validates the body: the DFG must be well formed, pins must reference
    /// existing operations and lie within a plausible state range, and the
    /// exit condition (if any) must exist and be 1 bit wide.
    ///
    /// # Errors
    /// Returns the first violated invariant as an [`IrError`].
    pub fn validate(&self) -> Result<(), IrError> {
        self.dfg.validate()?;
        for (&op, &pin) in &self.pins {
            if op.index() >= self.dfg.num_ops() {
                return Err(IrError::DanglingOp { op, referenced: op });
            }
            if let PinnedState::Exact(s) = pin {
                if s.0 >= self.source_states.max(1) + 64 {
                    return Err(IrError::InconsistentConstraint {
                        detail: format!("pin of {op} at {s} is far beyond the source latency"),
                    });
                }
            }
        }
        for (&op, &state) in &self.source_state {
            if op.index() >= self.dfg.num_ops() {
                return Err(IrError::DanglingOp { op, referenced: op });
            }
            if state >= self.source_states {
                return Err(IrError::InconsistentConstraint {
                    detail: format!("source state {state} of {op} exceeds source_states"),
                });
            }
        }
        if let Some(cond) = self.exit_condition {
            if cond.index() >= self.dfg.num_ops() {
                return Err(IrError::DanglingOp {
                    op: cond,
                    referenced: cond,
                });
            }
        }
        Ok(())
    }

    /// Operations that must not be speculated (side effects) — writes and
    /// calls keep their relative position with respect to the exit condition.
    pub fn side_effect_ops(&self) -> Vec<OpId> {
        self.dfg
            .iter_ops()
            .filter(|(_, op)| op.kind.has_side_effects())
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{PortDirection, Signal};

    fn body_with_io() -> (LinearBody, OpId, OpId, OpId, OpId) {
        let mut dfg = Dfg::new();
        let a = dfg.add_port("a", PortDirection::Input, 8);
        let y = dfg.add_port("y", PortDirection::Output, 8);
        let r1 = dfg.add_op(OpKind::Read(a), 8, vec![]);
        let r2 = dfg.add_op(OpKind::Read(a), 8, vec![]);
        let sum = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(r1, 8), Signal::op_w(r2, 8)],
        );
        let w1 = dfg.add_op(OpKind::Write(y), 8, vec![Signal::op_w(sum, 8)]);
        let w2 = dfg.add_op(OpKind::Write(y), 8, vec![Signal::op_w(sum, 8)]);
        let mut body = LinearBody::from_dfg("io", dfg);
        body.set_source_state(r1, 0);
        body.set_source_state(r2, 1);
        body.set_source_state(w1, 1);
        body.set_source_state(w2, 1);
        (body, r1, r2, w1, w2)
    }

    #[test]
    fn pinned_state_semantics() {
        let exact = PinnedState::Exact(StateIdx::new(2));
        assert!(exact.allows(StateIdx::new(2)));
        assert!(!exact.allows(StateIdx::new(3)));
        assert_eq!(exact.latest(), Some(StateIdx::new(2)));
        let after = PinnedState::AtOrAfter(StateIdx::new(1));
        assert!(after.allows(StateIdx::new(1)));
        assert!(after.allows(StateIdx::new(5)));
        assert!(!after.allows(StateIdx::new(0)));
        assert_eq!(after.latest(), None);
        assert_eq!(after.earliest(), StateIdx::new(1));
    }

    #[test]
    fn source_states_grow_with_assignments() {
        let (body, ..) = body_with_io();
        assert_eq!(body.source_states, 2);
    }

    #[test]
    fn io_order_deps_are_generated() {
        let (body, r1, r2, w1, w2) = body_with_io();
        let deps = body.io_order_deps();
        // reads in different states stay ordered
        assert!(deps.contains(&(r1, r2)));
        // writes to the same port always stay ordered
        assert!(deps.contains(&(w1, w2)));
        // no dependency from write to read of different ports
        assert!(!deps.contains(&(w1, r2)));
    }

    #[test]
    fn validation_catches_bad_pins_and_states() {
        let (mut body, r1, ..) = body_with_io();
        assert!(body.validate().is_ok());
        body.pin(r1, PinnedState::Exact(StateIdx::new(500)));
        assert!(body.validate().is_err());
        body.pins.clear();
        body.source_state.insert(r1, 99);
        assert!(body.validate().is_err());
    }

    #[test]
    fn side_effect_ops_lists_writes() {
        let (body, _, _, w1, w2) = body_with_io();
        let se = body.side_effect_ops();
        assert!(se.contains(&w1) && se.contains(&w2));
        assert_eq!(se.len(), 2);
    }

    #[test]
    fn from_dfg_defaults() {
        let dfg = Dfg::new();
        let body = LinearBody::from_dfg("empty", dfg);
        assert_eq!(body.source_states, 1);
        assert!(body.validate().is_ok());
        assert_eq!(body.num_ops(), 0);
    }
}
