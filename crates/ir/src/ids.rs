//! Strongly typed identifiers for IR entities.
//!
//! Every entity in the IR (operations, ports, CFG nodes/edges, loops) is
//! referred to through a small, copyable, index-like identifier. Using
//! distinct newtypes instead of bare `usize` values prevents a whole class of
//! mix-up bugs (e.g. indexing the operation arena with a CFG node id).

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// Indices are assigned densely by the owning arena, so this is
            /// mainly useful in tests and when deserializing saved results.
            pub fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw dense index backing this identifier.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of an [`Operation`](crate::Operation) inside a [`Dfg`](crate::Dfg).
    OpId,
    "op"
);
id_type!(
    /// Identifier of a module [`Port`](crate::Port).
    PortId,
    "port"
);
id_type!(
    /// Identifier of a [`CfgNode`](crate::CfgNode) inside a [`Cfg`](crate::Cfg).
    CfgNodeId,
    "n"
);
id_type!(
    /// Identifier of a [`CfgEdge`](crate::CfgEdge) (a control step) inside a [`Cfg`](crate::Cfg).
    CfgEdgeId,
    "e"
);
id_type!(
    /// Identifier of a loop recorded in a [`Cdfg`](crate::Cdfg).
    LoopId,
    "loop"
);

/// Index of a control step (state) within a linearized loop body.
///
/// States are numbered from `0`; the paper's examples label them `s1`, `s2`,
/// ... which correspond to `StateIdx(0)`, `StateIdx(1)`, etc.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StateIdx(pub u32);

impl StateIdx {
    /// Creates a state index.
    pub fn new(idx: u32) -> Self {
        Self(idx)
    }

    /// Returns the zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the next state (`self + 1`).
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// Returns the paper-style one-based label of this state (`s1`, `s2`, ...).
    pub fn label(self) -> String {
        format!("s{}", self.0 + 1)
    }
}

impl fmt::Debug for StateIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0 + 1)
    }
}

impl fmt::Display for StateIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0 + 1)
    }
}

impl From<u32> for StateIdx {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types() {
        let op = OpId::from_raw(3);
        let port = PortId::from_raw(3);
        assert_eq!(op.index(), port.index());
        assert_eq!(format!("{op}"), "op3");
        assert_eq!(format!("{port}"), "port3");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(OpId::from_raw(1));
        set.insert(OpId::from_raw(2));
        set.insert(OpId::from_raw(1));
        assert_eq!(set.len(), 2);
        assert!(OpId::from_raw(1) < OpId::from_raw(2));
    }

    #[test]
    fn state_idx_labels_are_one_based() {
        assert_eq!(StateIdx::new(0).label(), "s1");
        assert_eq!(StateIdx::new(2).label(), "s3");
        assert_eq!(StateIdx::new(0).next(), StateIdx::new(1));
        assert_eq!(format!("{}", StateIdx::new(4)), "s5");
    }

    #[test]
    fn usize_conversion() {
        let id = CfgEdgeId::from_raw(7);
        let as_usize: usize = id.into();
        assert_eq!(as_usize, 7);
    }
}
