//! Executable semantics of the IR: bit-accurate operation evaluation.
//!
//! This module pins down, in one place, *what every [`OpKind`] computes* so
//! that the reference interpreter, the cycle-accurate schedule simulator and
//! the RTL emitter (`hls-netlist`) all agree bit-for-bit. The value model is:
//!
//! * every value is a **two's-complement signed bit-vector** of a width
//!   between 1 and 64 bits ([`BitVal`]);
//! * an operation input is first resized to the consuming [`Signal`]'s width
//!   (truncation drops high bits, widening **sign-extends** — the IR carries
//!   no unsigned type, matching the paper's `int`-typed SystemC input);
//! * the operation is computed on the sign-extended values and the result
//!   **wraps** to the operation's declared width.
//!
//! The corner cases the Verilog standard leaves implementation-defined (or
//! `x`-valued) are given explicit, total definitions here, and the RTL
//! emitter generates guards so the emitted text has the same semantics:
//!
//! | case                         | defined result                          |
//! |------------------------------|-----------------------------------------|
//! | `Div` by zero                | `0`                                     |
//! | `Rem` by zero                | the dividend (`a % 0 = a`), preserving `a = (a/b)*b + a%b` |
//! | `Div`/`Rem` rounding         | truncation toward zero, sign of `Rem` follows the dividend |
//! | `Shl` by ≥ 64 (or negative)  | `0` (the amount is the *unsigned* value of the rhs bits)   |
//! | `Shr` by ≥ 64 (or negative)  | sign fill (all bits copies of the sign bit)                |
//! | `Resize` widening            | sign extension                          |
//! | `Slice` beyond the input     | reads the sign-extended representation  |
//!
//! [`Signal`]: crate::Signal

use crate::op::{CmpKind, OpKind};
use std::fmt;

/// Maximum supported value width in bits.
pub const MAX_WIDTH: u16 = 64;

/// A two's-complement signed bit-vector value of 1–64 bits.
///
/// The representation keeps the raw bits masked to the width; [`as_i64`]
/// reads them sign-extended and [`as_u64`] zero-extended. Construction wraps
/// the given value to the width, so a `BitVal` is always canonical.
///
/// [`as_i64`]: BitVal::as_i64
/// [`as_u64`]: BitVal::as_u64
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitVal {
    bits: u64,
    width: u16,
}

impl BitVal {
    /// Wraps `value` to a `width`-bit two's-complement value.
    ///
    /// Widths are clamped to `1..=64`.
    pub fn new(value: i64, width: u16) -> Self {
        let width = width.clamp(1, MAX_WIDTH);
        BitVal {
            bits: (value as u64) & Self::mask(width),
            width,
        }
    }

    /// The all-zero value of the given width.
    pub fn zero(width: u16) -> Self {
        Self::new(0, width)
    }

    /// Builds a value from raw bits (masked to `width`).
    pub fn from_bits(bits: u64, width: u16) -> Self {
        let width = width.clamp(1, MAX_WIDTH);
        BitVal {
            bits: bits & Self::mask(width),
            width,
        }
    }

    fn mask(width: u16) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Bit width of the value.
    pub fn width(self) -> u16 {
        self.width
    }

    /// The raw bits, zero-extended to 64 bits.
    pub fn as_u64(self) -> u64 {
        self.bits
    }

    /// The value sign-extended to an `i64` (the canonical reading).
    pub fn as_i64(self) -> i64 {
        if self.width >= 64 {
            self.bits as i64
        } else {
            let shift = 64 - u32::from(self.width);
            ((self.bits << shift) as i64) >> shift
        }
    }

    /// Resizes to `width`: truncation when narrowing, **sign extension** when
    /// widening (the IR value model is signed).
    pub fn resize(self, width: u16) -> Self {
        Self::new(self.as_i64(), width)
    }

    /// `true` when any bit is set — the multiplexer/predicate truth test.
    pub fn is_true(self) -> bool {
        self.bits != 0
    }
}

impl fmt::Debug for BitVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.as_i64(), self.width)
    }
}

impl fmt::Display for BitVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_i64())
    }
}

/// Error raised by [`eval_op`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The operation expects a different number of inputs.
    BadArity {
        /// Kind mnemonic.
        kind: String,
        /// Expected input count.
        expected: usize,
        /// Provided input count.
        found: usize,
    },
    /// The kind has no context-free value semantics (`Read`, `Write`, `Call`,
    /// input-less `Pass`): an execution engine must supply the value.
    NeedsContext {
        /// Kind mnemonic.
        kind: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::BadArity {
                kind,
                expected,
                found,
            } => write!(f, "`{kind}` expects {expected} inputs, got {found}"),
            EvalError::NeedsContext { kind } => {
                write!(f, "`{kind}` has no context-free evaluation")
            }
        }
    }
}

impl std::error::Error for EvalError {}

fn expect_arity(kind: &OpKind, inputs: &[BitVal], n: usize) -> Result<(), EvalError> {
    if inputs.len() == n {
        Ok(())
    } else {
        Err(EvalError::BadArity {
            kind: kind.mnemonic(),
            expected: n,
            found: inputs.len(),
        })
    }
}

/// Wraps a 128-bit intermediate result to `width` bits.
fn wrap(value: i128, width: u16) -> BitVal {
    BitVal::from_bits(value as u64, width)
}

/// The shift amount encoded by `amount`: the **unsigned** reading of its
/// bits, matching Verilog's self-determined, unsigned shift operand.
fn shift_amount(amount: BitVal) -> u64 {
    amount.as_u64()
}

/// Evaluates a pure operation on already-resized input values, producing a
/// `width`-bit result.
///
/// Callers are expected to resize each producer value to the consuming
/// signal's width first (see [`BitVal::resize`]); this function sign-extends
/// the inputs, computes in wide arithmetic and wraps the result to `width`.
///
/// # Errors
/// [`EvalError::BadArity`] when the input count does not match the kind, and
/// [`EvalError::NeedsContext`] for kinds whose value depends on the execution
/// environment (`Read`, `Write`, `Call` and input-less `Pass`).
pub fn eval_op(kind: &OpKind, width: u16, inputs: &[BitVal]) -> Result<BitVal, EvalError> {
    let bin = |f: fn(i128, i128) -> i128| -> Result<BitVal, EvalError> {
        expect_arity(kind, inputs, 2)?;
        Ok(wrap(
            f(
                i128::from(inputs[0].as_i64()),
                i128::from(inputs[1].as_i64()),
            ),
            width,
        ))
    };
    match kind {
        OpKind::Add => bin(|a, b| a + b),
        OpKind::Sub => bin(|a, b| a - b),
        OpKind::Mul => bin(|a, b| a * b),
        OpKind::Div => {
            expect_arity(kind, inputs, 2)?;
            let (a, b) = (inputs[0].as_i64(), inputs[1].as_i64());
            // Division by zero is defined as 0; i64::MIN / -1 wraps via i128.
            let q = if b == 0 {
                0
            } else {
                i128::from(a) / i128::from(b)
            };
            Ok(wrap(q, width))
        }
        OpKind::Rem => {
            expect_arity(kind, inputs, 2)?;
            let (a, b) = (inputs[0].as_i64(), inputs[1].as_i64());
            // `a % 0 = a` keeps the division identity with `a / 0 = 0`.
            let r = if b == 0 {
                i128::from(a)
            } else {
                i128::from(a) % i128::from(b)
            };
            Ok(wrap(r, width))
        }
        OpKind::And => bin(|a, b| a & b),
        OpKind::Or => bin(|a, b| a | b),
        OpKind::Xor => bin(|a, b| a ^ b),
        OpKind::Not => {
            expect_arity(kind, inputs, 1)?;
            Ok(wrap(!i128::from(inputs[0].as_i64()), width))
        }
        OpKind::Neg => {
            expect_arity(kind, inputs, 1)?;
            Ok(wrap(-i128::from(inputs[0].as_i64()), width))
        }
        OpKind::Shl => {
            expect_arity(kind, inputs, 2)?;
            let amt = shift_amount(inputs[1]);
            if amt >= 64 {
                Ok(BitVal::zero(width))
            } else {
                Ok(wrap(i128::from(inputs[0].as_i64()) << amt, width))
            }
        }
        OpKind::Shr => {
            expect_arity(kind, inputs, 2)?;
            // Arithmetic shift; amounts ≥ 64 saturate to a pure sign fill.
            let amt = shift_amount(inputs[1]).min(63) as u32;
            Ok(wrap(i128::from(inputs[0].as_i64() >> amt), width))
        }
        OpKind::Cmp(c) => {
            expect_arity(kind, inputs, 2)?;
            let t = eval_cmp(*c, inputs[0], inputs[1]);
            Ok(BitVal::from_bits(u64::from(t), 1))
        }
        OpKind::Mux => {
            expect_arity(kind, inputs, 3)?;
            let chosen = if inputs[0].is_true() {
                inputs[1]
            } else {
                inputs[2]
            };
            Ok(chosen.resize(width))
        }
        OpKind::Slice { hi, lo } => {
            expect_arity(kind, inputs, 1)?;
            // Bits are read from the sign-extended representation, so a range
            // reaching past the input width sees copies of the sign bit; a
            // declared width wider than the range sign-extends the field
            // (matching the emitted `$signed(expr[hi:lo])`).
            let shifted = inputs[0].as_i64() >> u32::from(*lo).min(63);
            let take = usize::from(*hi).saturating_sub(usize::from(*lo)) + 1;
            let sliced = BitVal::from_bits(shifted as u64, take.min(64) as u16);
            Ok(sliced.resize(width))
        }
        OpKind::Resize => {
            expect_arity(kind, inputs, 1)?;
            Ok(inputs[0].resize(width))
        }
        OpKind::Const(v) => {
            expect_arity(kind, inputs, 0)?;
            Ok(BitVal::new(*v, width))
        }
        OpKind::Pass => {
            if inputs.len() == 1 {
                Ok(inputs[0].resize(width))
            } else {
                Err(EvalError::NeedsContext {
                    kind: kind.mnemonic(),
                })
            }
        }
        OpKind::Read(_) | OpKind::Write(_) | OpKind::Call { .. } => Err(EvalError::NeedsContext {
            kind: kind.mnemonic(),
        }),
    }
}

/// Evaluates a comparison on two values (signed, per the IR value model).
pub fn eval_cmp(kind: CmpKind, lhs: BitVal, rhs: BitVal) -> bool {
    kind.eval(lhs.as_i64(), rhs.as_i64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PortId;

    fn v(x: i64, w: u16) -> BitVal {
        BitVal::new(x, w)
    }

    fn run(kind: OpKind, width: u16, inputs: &[BitVal]) -> i64 {
        eval_op(&kind, width, inputs).expect("evaluates").as_i64()
    }

    #[test]
    fn bitval_is_canonical_two_complement() {
        assert_eq!(v(255, 8).as_i64(), -1);
        assert_eq!(v(255, 8).as_u64(), 255);
        assert_eq!(v(-1, 8).as_u64(), 255);
        assert_eq!(v(5, 64).as_i64(), 5);
        assert_eq!(v(i64::MIN, 64).as_i64(), i64::MIN);
        // 1-bit values read as 0 / -1 but test true as "any bit set"
        assert!(v(1, 1).is_true());
        assert_eq!(v(1, 1).as_i64(), -1);
        assert!(!v(0, 1).is_true());
    }

    #[test]
    fn resize_sign_extends_when_widening_and_truncates_when_narrowing() {
        assert_eq!(v(-5, 8).resize(16).as_i64(), -5);
        assert_eq!(v(-5, 8).resize(16).as_u64(), 0xFFFB);
        assert_eq!(v(0x1FF, 16).resize(8).as_i64(), -1); // keeps low 8 bits
        assert_eq!(v(100, 8).resize(4).as_i64(), 4); // 100 = 0b110_0100
    }

    #[test]
    fn add_sub_mul_wrap_to_the_result_width() {
        assert_eq!(run(OpKind::Add, 8, &[v(127, 8), v(1, 8)]), -128);
        assert_eq!(run(OpKind::Sub, 8, &[v(-128, 8), v(1, 8)]), 127);
        assert_eq!(run(OpKind::Mul, 8, &[v(16, 8), v(16, 8)]), 0);
        // widening add sign-extends its inputs first: (-1) + 1 = 0, not 256
        assert_eq!(run(OpKind::Add, 9, &[v(-1, 8), v(1, 8)]), 0);
        assert_eq!(run(OpKind::Mul, 64, &[v(i64::MAX, 64), v(2, 64)]), -2);
    }

    #[test]
    fn division_truncates_toward_zero_and_by_zero_is_defined() {
        assert_eq!(run(OpKind::Div, 32, &[v(7, 32), v(2, 32)]), 3);
        assert_eq!(run(OpKind::Div, 32, &[v(-7, 32), v(2, 32)]), -3);
        assert_eq!(run(OpKind::Div, 32, &[v(7, 32), v(-2, 32)]), -3);
        assert_eq!(run(OpKind::Div, 32, &[v(-7, 32), v(-2, 32)]), 3);
        assert_eq!(run(OpKind::Div, 32, &[v(42, 32), v(0, 32)]), 0);
        // overflow case wraps: MIN / -1 = MIN at the same width
        assert_eq!(
            run(OpKind::Div, 8, &[v(-128, 8), v(-1, 8)]),
            -128,
            "two's-complement division overflow must wrap"
        );
    }

    #[test]
    fn remainder_follows_the_dividend_sign_and_by_zero_is_identity() {
        assert_eq!(run(OpKind::Rem, 32, &[v(7, 32), v(2, 32)]), 1);
        assert_eq!(run(OpKind::Rem, 32, &[v(-7, 32), v(2, 32)]), -1);
        assert_eq!(run(OpKind::Rem, 32, &[v(7, 32), v(-2, 32)]), 1);
        assert_eq!(run(OpKind::Rem, 32, &[v(-7, 32), v(0, 32)]), -7);
        // identity a = (a/b)*b + a%b holds for every pair, including b = 0
        for a in [-9i64, -1, 0, 5, 11] {
            for b in [-4i64, -1, 0, 3] {
                let q = run(OpKind::Div, 32, &[v(a, 32), v(b, 32)]);
                let r = run(OpKind::Rem, 32, &[v(a, 32), v(b, 32)]);
                assert_eq!(q * b + r, a, "identity failed for {a}/{b}");
            }
        }
    }

    #[test]
    fn shift_left_drops_bits_and_saturates_on_huge_amounts() {
        assert_eq!(run(OpKind::Shl, 8, &[v(3, 8), v(2, 8)]), 12);
        assert_eq!(run(OpKind::Shl, 8, &[v(1, 8), v(7, 8)]), -128);
        assert_eq!(
            run(OpKind::Shl, 8, &[v(1, 8), v(8, 8)]),
            0,
            "amount = width"
        );
        assert_eq!(run(OpKind::Shl, 8, &[v(1, 8), v(100, 8)]), 0);
        // negative amounts read as huge unsigned values → 0
        assert_eq!(run(OpKind::Shl, 8, &[v(1, 8), v(-1, 8)]), 0);
        // a wider result keeps bits shifted past the input width
        assert_eq!(run(OpKind::Shl, 16, &[v(1, 8), v(8, 4)]), 256);
    }

    #[test]
    fn shift_right_is_arithmetic_with_sign_fill_overflow() {
        assert_eq!(run(OpKind::Shr, 8, &[v(-8, 8), v(1, 8)]), -4);
        assert_eq!(run(OpKind::Shr, 8, &[v(8, 8), v(1, 8)]), 4);
        assert_eq!(run(OpKind::Shr, 8, &[v(-1, 8), v(100, 8)]), -1, "sign fill");
        assert_eq!(run(OpKind::Shr, 8, &[v(1, 8), v(100, 8)]), 0);
        assert_eq!(run(OpKind::Shr, 8, &[v(-128, 8), v(-1, 8)]), -1);
    }

    #[test]
    fn comparisons_are_signed_and_one_bit() {
        let t = eval_op(&OpKind::Cmp(CmpKind::Lt), 1, &[v(-1, 8), v(0, 8)]).unwrap();
        assert!(t.is_true());
        assert_eq!(t.width(), 1);
        // 0xFF at 8 bits is -1, so it is *less* than 0 under signed compare
        assert!(eval_cmp(CmpKind::Lt, BitVal::from_bits(0xFF, 8), v(0, 8)));
        assert!(!eval_cmp(CmpKind::Gt, v(-100, 8), v(5, 8)));
        // mixed widths sign-extend before comparing
        assert!(eval_cmp(CmpKind::Eq, v(-1, 4), v(-1, 32)));
    }

    #[test]
    fn mux_selects_on_any_nonzero_bit() {
        assert_eq!(run(OpKind::Mux, 8, &[v(1, 1), v(11, 8), v(22, 8)]), 11);
        assert_eq!(run(OpKind::Mux, 8, &[v(0, 1), v(11, 8), v(22, 8)]), 22);
        assert_eq!(run(OpKind::Mux, 8, &[v(2, 8), v(11, 8), v(22, 8)]), 11);
        // result resizes the chosen branch
        assert_eq!(run(OpKind::Mux, 4, &[v(1, 1), v(100, 8), v(0, 8)]), 4);
    }

    #[test]
    fn slice_reads_sign_extended_bits() {
        assert_eq!(
            run(OpKind::Slice { hi: 7, lo: 4 }, 4, &[v(0x5A, 8)]),
            5,
            "high nibble of 0x5A"
        );
        assert_eq!(
            run(OpKind::Slice { hi: 3, lo: 0 }, 4, &[v(0x5A, 8)]),
            -6,
            "low nibble 0xA reads as -6 at 4 bits"
        );
        // beyond the input width the sign bit repeats
        assert_eq!(run(OpKind::Slice { hi: 15, lo: 8 }, 8, &[v(-1, 8)]), -1);
        assert_eq!(run(OpKind::Slice { hi: 15, lo: 8 }, 8, &[v(1, 8)]), 0);
        // a result width wider than the selected range sign-extends the
        // field, like the emitted `$signed(expr[hi:lo])` does
        assert_eq!(run(OpKind::Slice { hi: 3, lo: 0 }, 8, &[v(0xFA, 8)]), -6);
        assert_eq!(run(OpKind::Slice { hi: 3, lo: 0 }, 8, &[v(0x7A, 8)]), -6);
        assert_eq!(run(OpKind::Slice { hi: 2, lo: 0 }, 8, &[v(0x02, 8)]), 2);
    }

    #[test]
    fn bitwise_ops_sign_extend_their_inputs() {
        assert_eq!(run(OpKind::And, 16, &[v(-1, 8), v(0x0FF0, 16)]), 0x0FF0);
        assert_eq!(run(OpKind::Or, 8, &[v(0x50, 8), v(0x05, 8)]), 0x55);
        assert_eq!(run(OpKind::Xor, 8, &[v(-1, 8), v(0x0F, 8)]), -16);
        assert_eq!(run(OpKind::Not, 8, &[v(0, 8)]), -1);
        assert_eq!(run(OpKind::Neg, 8, &[v(-128, 8)]), -128, "negation wraps");
    }

    #[test]
    fn const_pass_and_resize_round_trip() {
        assert_eq!(run(OpKind::Const(300), 8, &[]), 44);
        assert_eq!(run(OpKind::Pass, 16, &[v(-3, 8)]), -3);
        assert_eq!(run(OpKind::Resize, 16, &[v(-3, 8)]), -3);
        assert_eq!(run(OpKind::Resize, 4, &[v(100, 8)]), 4);
    }

    #[test]
    fn context_dependent_kinds_are_rejected() {
        let p = PortId::from_raw(0);
        for kind in [
            OpKind::Read(p),
            OpKind::Write(p),
            OpKind::Call {
                name: "ip".into(),
                latency: 1,
            },
            OpKind::Pass,
        ] {
            assert!(matches!(
                eval_op(&kind, 8, &[]),
                Err(EvalError::NeedsContext { .. })
            ));
        }
        assert!(matches!(
            eval_op(&OpKind::Add, 8, &[v(1, 8)]),
            Err(EvalError::BadArity { .. })
        ));
    }
}
