//! Error type for IR construction and validation.

use crate::ids::{CfgEdgeId, CfgNodeId, OpId, PortId};
use std::error::Error;
use std::fmt;

/// Errors reported by IR validation and IR-level transformations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// An operation references another operation id that does not exist.
    DanglingOp {
        /// The referencing operation.
        op: OpId,
        /// The missing operation.
        referenced: OpId,
    },
    /// An operation references a port id that does not exist.
    DanglingPort {
        /// The referencing operation.
        op: OpId,
        /// The missing port.
        referenced: PortId,
    },
    /// A read targets an output port or a write targets an input port.
    PortDirectionMismatch {
        /// The offending operation.
        op: OpId,
        /// The port with the wrong direction.
        port: PortId,
    },
    /// An operation has the wrong number of inputs for its kind.
    BadArity {
        /// The offending operation.
        op: OpId,
        /// Kind mnemonic.
        kind: String,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        found: usize,
    },
    /// An operation's result width is zero.
    ZeroWidth {
        /// The offending operation.
        op: OpId,
    },
    /// An operation's predicate can never be true.
    UnsatisfiablePredicate {
        /// The offending operation.
        op: OpId,
    },
    /// The distance-0 data dependence graph contains a cycle.
    CombinationalDependenceCycle {
        /// One operation on the cycle.
        op: OpId,
    },
    /// A CFG edge references a node that does not exist.
    DanglingCfgEdge {
        /// The offending edge.
        edge: CfgEdgeId,
    },
    /// The CFG has more than one entry node.
    MultipleEntries {
        /// How many entry nodes were found.
        count: usize,
    },
    /// A fork node does not have exactly two forward successors.
    MalformedFork {
        /// The offending node.
        node: CfgNodeId,
        /// Its forward out-degree.
        out_degree: usize,
    },
    /// A join node has fewer than two predecessors.
    MalformedJoin {
        /// The offending node.
        node: CfgNodeId,
    },
    /// A back edge does not target a loop-top node.
    BackEdgeNotToLoopTop {
        /// The offending edge.
        edge: CfgEdgeId,
    },
    /// An operation's home edge does not exist in the CFG.
    HomeEdgeMissing {
        /// The offending operation.
        op: OpId,
        /// The missing edge.
        edge: CfgEdgeId,
    },
    /// A linear body constraint is inconsistent (e.g. pin beyond latency).
    InconsistentConstraint {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DanglingOp { op, referenced } => {
                write!(
                    f,
                    "operation {op} references missing operation {referenced}"
                )
            }
            IrError::DanglingPort { op, referenced } => {
                write!(f, "operation {op} references missing port {referenced}")
            }
            IrError::PortDirectionMismatch { op, port } => {
                write!(
                    f,
                    "operation {op} accesses port {port} against its direction"
                )
            }
            IrError::BadArity {
                op,
                kind,
                expected,
                found,
            } => write!(
                f,
                "operation {op} of kind {kind} expects {expected} inputs but has {found}"
            ),
            IrError::ZeroWidth { op } => write!(f, "operation {op} has zero result width"),
            IrError::UnsatisfiablePredicate { op } => {
                write!(f, "operation {op} has an unsatisfiable predicate")
            }
            IrError::CombinationalDependenceCycle { op } => write!(
                f,
                "intra-iteration data dependence cycle through operation {op}"
            ),
            IrError::DanglingCfgEdge { edge } => {
                write!(f, "cfg edge {edge} references a missing node")
            }
            IrError::MultipleEntries { count } => {
                write!(f, "cfg has {count} entry nodes, expected at most one")
            }
            IrError::MalformedFork { node, out_degree } => write!(
                f,
                "fork node {node} has {out_degree} forward successors, expected 2"
            ),
            IrError::MalformedJoin { node } => {
                write!(f, "join node {node} has fewer than two predecessors")
            }
            IrError::BackEdgeNotToLoopTop { edge } => {
                write!(f, "back edge {edge} does not target a loop top")
            }
            IrError::HomeEdgeMissing { op, edge } => {
                write!(f, "operation {op} is homed on missing cfg edge {edge}")
            }
            IrError::InconsistentConstraint { detail } => {
                write!(f, "inconsistent constraint: {detail}")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errors = vec![
            IrError::DanglingOp {
                op: OpId::from_raw(1),
                referenced: OpId::from_raw(9),
            },
            IrError::ZeroWidth {
                op: OpId::from_raw(0),
            },
            IrError::MultipleEntries { count: 2 },
            IrError::InconsistentConstraint {
                detail: "pin beyond latency".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<IrError>();
    }
}
