//! The combined control/data flow graph and loop bookkeeping.

use crate::cfg::Cfg;
use crate::dfg::Dfg;
use crate::error::IrError;
use crate::ids::{CfgEdgeId, CfgNodeId, LoopId, OpId};
use std::collections::HashMap;

/// Maps each fork node to the 1-bit operation computing its branch condition.
///
/// Predicate conversion consults this map to derive operation predicates from
/// the branch edges they are homed on.
pub type ForkConditions = HashMap<CfgNodeId, OpId>;

/// Bookkeeping for one loop of the behavioural description.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopInfo {
    /// Loop identifier.
    pub id: LoopId,
    /// The loop-top CFG node.
    pub top: CfgNodeId,
    /// The loop-bottom CFG node.
    pub bottom: CfgNodeId,
    /// Control-step edges that form the loop body, in program order.
    pub body_edges: Vec<CfgEdgeId>,
    /// The operation computing the loop exit condition, if the loop is not
    /// infinite (`delta != 0` in the paper's Figure 1).
    pub exit_condition: Option<OpId>,
    /// `true` if the loop runs forever (the outer `while(true)` of a thread).
    pub infinite: bool,
    /// Optional user-facing name.
    pub name: Option<String>,
}

/// A complete control/data flow graph: the [`Cfg`], the [`Dfg`], the loops,
/// and the association of operations to control steps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cdfg {
    /// Control flow graph.
    pub cfg: Cfg,
    /// Data flow graph.
    pub dfg: Dfg,
    /// Loops, outermost first.
    pub loops: Vec<LoopInfo>,
    /// Branch condition operation of each fork node.
    pub fork_conditions: ForkConditions,
    /// Design name (module name in the source description).
    pub name: String,
}

impl Cdfg {
    /// Creates an empty CDFG with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Cdfg {
            cfg: Cfg::new(),
            dfg: Dfg::new(),
            loops: Vec::new(),
            fork_conditions: ForkConditions::new(),
            name: name.into(),
        }
    }

    /// Registers a loop.
    pub fn add_loop(&mut self, info: LoopInfo) -> LoopId {
        let id = info.id;
        self.loops.push(info);
        id
    }

    /// Looks up a loop by id.
    pub fn loop_info(&self, id: LoopId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.id == id)
    }

    /// The innermost loop (the last registered one), if any. The paper
    /// pipelines loops as specified by the user, which in the provided
    /// examples is the innermost `do_while`.
    pub fn innermost_loop(&self) -> Option<&LoopInfo> {
        self.loops.last()
    }

    /// Maps every control-step edge to the operations homed on it.
    pub fn ops_by_edge(&self) -> HashMap<CfgEdgeId, Vec<OpId>> {
        let mut map: HashMap<CfgEdgeId, Vec<OpId>> = HashMap::new();
        for (id, op) in self.dfg.iter_ops() {
            if let Some(edge) = op.home_edge {
                map.entry(edge).or_default().push(id);
            }
        }
        map
    }

    /// Total number of operations — the design-size metric used by the
    /// paper's Figure 9 (designs ranged from 100 to over 6000 operations).
    pub fn num_ops(&self) -> usize {
        self.dfg.num_ops()
    }

    /// Validates both graphs and their cross-references.
    ///
    /// # Errors
    /// Returns the first violated invariant as an [`IrError`].
    pub fn validate(&self) -> Result<(), IrError> {
        self.dfg.validate()?;
        self.cfg.validate()?;
        for (id, op) in self.dfg.iter_ops() {
            if let Some(edge) = op.home_edge {
                if edge.index() >= self.cfg.num_edges() {
                    return Err(IrError::HomeEdgeMissing { op: id, edge });
                }
            }
        }
        for l in &self.loops {
            for &e in &l.body_edges {
                if e.index() >= self.cfg.num_edges() {
                    return Err(IrError::DanglingCfgEdge { edge: e });
                }
            }
            if let Some(cond) = l.exit_condition {
                if cond.index() >= self.dfg.num_ops() {
                    return Err(IrError::DanglingOp {
                        op: cond,
                        referenced: cond,
                    });
                }
            }
        }
        Ok(())
    }

    /// A short multi-line summary used by examples and reports.
    pub fn summary(&self) -> String {
        let hist = self.dfg.kind_histogram();
        let mut kinds: Vec<_> = hist.iter().collect();
        kinds.sort();
        let kind_str = kinds
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "design `{}`: {} ops, {} ports, {} cfg nodes, {} control steps, {} loops\n  ops: {}",
            self.name,
            self.dfg.num_ops(),
            self.dfg.num_ports(),
            self.cfg.num_nodes(),
            self.cfg.num_edges(),
            self.loops.len(),
            kind_str
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::straight_line_loop;
    use crate::dfg::{PortDirection, Signal};
    use crate::op::OpKind;

    fn tiny_cdfg() -> Cdfg {
        let mut cdfg = Cdfg::new("tiny");
        let (cfg, steps, top, bottom) = straight_line_loop(LoopId::from_raw(0), 2);
        cdfg.cfg = cfg;
        let a = cdfg.dfg.add_port("a", PortDirection::Input, 8);
        let y = cdfg.dfg.add_port("y", PortDirection::Output, 8);
        let ra = cdfg.dfg.add_op(OpKind::Read(a), 8, vec![]);
        let inc = cdfg.dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(ra, 8), Signal::constant(1, 8)],
        );
        let w = cdfg
            .dfg
            .add_op(OpKind::Write(y), 8, vec![Signal::op_w(inc, 8)]);
        cdfg.dfg.set_home_edge(ra, steps[0]);
        cdfg.dfg.set_home_edge(inc, steps[0]);
        cdfg.dfg.set_home_edge(w, steps[1]);
        cdfg.add_loop(LoopInfo {
            id: LoopId::from_raw(0),
            top,
            bottom,
            body_edges: steps,
            exit_condition: None,
            infinite: true,
            name: Some("main".into()),
        });
        cdfg
    }

    #[test]
    fn validate_tiny() {
        let cdfg = tiny_cdfg();
        assert!(cdfg.validate().is_ok());
        assert_eq!(cdfg.num_ops(), 3);
        assert!(cdfg.innermost_loop().is_some());
    }

    #[test]
    fn ops_by_edge_groups_correctly() {
        let cdfg = tiny_cdfg();
        let by_edge = cdfg.ops_by_edge();
        let l = cdfg.innermost_loop().unwrap();
        assert_eq!(by_edge[&l.body_edges[0]].len(), 2);
        assert_eq!(by_edge[&l.body_edges[1]].len(), 1);
    }

    #[test]
    fn home_edge_out_of_range_rejected() {
        let mut cdfg = tiny_cdfg();
        let bogus = CfgEdgeId::from_raw(999);
        let first = cdfg.dfg.op_ids().next().unwrap();
        cdfg.dfg.set_home_edge(first, bogus);
        assert!(matches!(
            cdfg.validate(),
            Err(IrError::HomeEdgeMissing { .. })
        ));
    }

    #[test]
    fn summary_mentions_name_and_counts() {
        let cdfg = tiny_cdfg();
        let s = cdfg.summary();
        assert!(s.contains("tiny"));
        assert!(s.contains("3 ops"));
        assert!(s.contains("add:1"));
    }

    #[test]
    fn loop_lookup() {
        let cdfg = tiny_cdfg();
        assert!(cdfg.loop_info(LoopId::from_raw(0)).is_some());
        assert!(cdfg.loop_info(LoopId::from_raw(5)).is_none());
    }
}
