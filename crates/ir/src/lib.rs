//! # hls-ir — Control/Data Flow Graph intermediate representation
//!
//! This crate provides the intermediate representation used throughout the
//! `rpp-hls` workspace, a reproduction of *"Realistic Performance-constrained
//! Pipelining in High-level Synthesis"* (Kondratyev, Lavagno, Meyer, Watanabe,
//! DATE 2011).
//!
//! The representation mirrors the one described in Section II of the paper:
//!
//! * a **control flow graph** ([`Cfg`]) whose nodes either fork/join control
//!   flow (conditionals and loops) or correspond to `wait()` calls (state
//!   boundaries), and whose *edges* are the control steps in which operations
//!   execute;
//! * a **data flow graph** ([`Dfg`]) whose nodes are operations
//!   ([`Operation`]) and whose edges are data dependencies, possibly carrying
//!   an *iteration distance* for loop-carried dependencies;
//! * every DFG operation is associated with a CFG edge (its *home* control
//!   step).
//!
//! The two graphs plus loop bookkeeping form a [`Cdfg`]. After the optimizer
//! (see the `hls-opt` crate) applies predicate conversion, a loop body becomes
//! a [`LinearBody`]: a straight-line sequence of control steps with predicated
//! operations, which is what the scheduler consumes.
//!
//! ## Example
//!
//! ```
//! use hls_ir::{Dfg, OpKind, PortDirection, Signal};
//!
//! let mut dfg = Dfg::new();
//! let mask = dfg.add_port("mask", PortDirection::Input, 32);
//! let chrome = dfg.add_port("chrome", PortDirection::Input, 32);
//! let m = dfg.add_op(OpKind::Read(mask), 32, vec![]);
//! let c = dfg.add_op(OpKind::Read(chrome), 32, vec![]);
//! let prod = dfg.add_op(OpKind::Mul, 32, vec![Signal::op(m), Signal::op(c)]);
//! assert_eq!(dfg.op(prod).inputs.len(), 2);
//! assert_eq!(dfg.num_ops(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cdfg;
pub mod cfg;
pub mod dense;
pub mod dfg;
pub mod dot;
pub mod error;
pub mod eval;
pub mod ids;
pub mod linear;
pub mod op;
pub mod predicate;

pub use cdfg::{Cdfg, ForkConditions, LoopInfo};
pub use cfg::{Cfg, CfgEdge, CfgNode, CfgNodeKind};
pub use dense::DenseOpMap;
pub use dfg::{DataDep, Dfg, Port, PortDirection, Signal};
pub use error::IrError;
pub use eval::{eval_op, BitVal, EvalError};
pub use ids::{CfgEdgeId, CfgNodeId, LoopId, OpId, PortId, StateIdx};
pub use linear::{LinearBody, PinnedState};
pub use op::{CmpKind, OpKind, Operation};
pub use predicate::Predicate;
