//! # hls-lint — static netlist analysis for the rpp-hls flow
//!
//! A diagnostics engine over a validated [`NirModule`] plus the synthesis
//! context that produced it (the [`hls_netlist::ScheduleDesc`] and the
//! [`hls_bind::BoundDesign`]). Two analysis families feed one report:
//!
//! * **structural lints** — graph-shape checks: unreachable FSM states,
//!   dead registers, mux arms that can never be selected, width-truncating
//!   resizes, post-sanitize name collisions, steering fan-in past a bound,
//!   and const-foldable rewrite residue ([`Lint`] lists the catalog);
//! * **static timing** — per-cell arrival times under the paper's Figure 8
//!   delay model ([`hls_netlist::ChainTiming`]): flip-flop launch at every
//!   register and registered source, Table 1 delays per cell, steering
//!   trees charged once by leaf fan-in, and flip-flop setup at every
//!   register/output endpoint. The result is a [`TimingSummary`] with
//!   worst/total negative slack and a named cell-by-cell critical path.
//!
//! Findings carry a [`Severity`] configured per lint via [`LintConfig`];
//! deny-level findings make the `hls` facade's synthesizer fail the run.
//! Reports serialize to JSON ([`LintReport::to_json`]) for CI artifacts.
//!
//! The timing analysis also *acts*: [`optimize_timed`] drives the
//! `hls_nir` timing rewrites (operator rebalancing, shift strength
//! reduction, register retiming) from the per-endpoint slack data,
//! restricted to failing cones ([`critical_cells`]) and monotone in worst
//! slack by accept-or-revert rounds.
//!
//! ```
//! use hls_lint::{analyze, LintConfig, LintContext};
//! use hls_nir::{CellKind, NirModule};
//! use hls_tech::{ClockConstraint, TechLibrary};
//!
//! let mut m = NirModule::new("demo");
//! let en = m.push(CellKind::Const(1), 1, vec![]);
//! let c = m.push(CellKind::Const(5), 8, vec![]);
//! m.push(CellKind::Reg { init: 0 }, 8, vec![c, en]); // written, never read
//! let lib = TechLibrary::artisan_90nm_typical();
//! let ctx = LintContext::new(&lib, ClockConstraint::from_period_ps(1600.0));
//! let report = analyze(&m, &ctx, &LintConfig::default());
//! assert_eq!(report.count_of(hls_lint::Lint::DeadRegister), 1);
//! assert!(!report.has_deny());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod sta;
mod structural;
pub mod timed;

pub use config::{Lint, LintConfig, Severity};
pub use diag::{Diagnostic, LintReport};
pub use sta::{
    analyze_timing, critical_cells, endpoint_slacks, PathStep, TimingEndpoint, TimingSummary,
};
pub use timed::{optimize_timed, optimize_timed_with, TimedRewriteReport, MAX_ROUNDS};

use hls_bind::BoundDesign;
use hls_netlist::{ChainTiming, ScheduleDesc};
use hls_nir::{validate, CellId, NirModule};
use hls_tech::{ClockConstraint, TechLibrary};

/// The synthesis context a netlist is analyzed in: the technology library
/// and clock the timing runs against, plus (optionally) the binding and
/// schedule the lowering implemented, for cross-checks.
#[derive(Clone, Copy, Debug)]
pub struct LintContext<'a> {
    /// Delay/area figures for the timing analysis.
    pub library: &'a TechLibrary,
    /// The clock endpoint slacks are measured against.
    pub clock: ClockConstraint,
    /// The bound design the netlist was lowered from, when available.
    pub bound: Option<&'a BoundDesign>,
    /// The schedule the netlist implements, when available.
    pub schedule: Option<&'a ScheduleDesc>,
}

impl<'a> LintContext<'a> {
    /// A context with library and clock only.
    pub fn new(library: &'a TechLibrary, clock: ClockConstraint) -> Self {
        LintContext {
            library,
            clock,
            bound: None,
            schedule: None,
        }
    }

    /// Attaches the bound design (enables the binding fan-in cross-check).
    pub fn with_binding(mut self, bound: &'a BoundDesign) -> Self {
        self.bound = Some(bound);
        self
    }

    /// Attaches the schedule (enables the fold/stage consistency check).
    pub fn with_schedule(mut self, schedule: &'a ScheduleDesc) -> Self {
        self.schedule = Some(schedule);
        self
    }
}

/// Runs every enabled lint plus the static timing analysis and returns the
/// combined report.
///
/// The module is [`validate`]d first: a malformed netlist yields a single
/// deny-level [`Lint::MalformedNetlist`] finding and no timing summary
/// (the delay walk assumes acyclic, width-consistent structure).
pub fn analyze(m: &NirModule, ctx: &LintContext, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport {
        module: m.name.clone(),
        clock_ps: ctx.clock.period_ps(),
        diagnostics: Vec::new(),
        timing: None,
    };
    let push = |report: &mut LintReport, lint: Lint, cell: Option<CellId>, message: String| {
        let severity = cfg.severity(lint);
        if severity == Severity::Allow {
            return;
        }
        let name = cell.and_then(|c| m.cell(c).name.clone());
        report.diagnostics.push(Diagnostic {
            lint,
            severity,
            cell,
            name,
            message,
        });
    };

    if let Err(e) = validate(m) {
        push(
            &mut report,
            Lint::MalformedNetlist,
            None,
            format!("structural validation failed: {e}"),
        );
        return report;
    }
    if let Some(sched) = ctx.schedule {
        if sched.fold_states() != m.fold_states || sched.num_stages() != m.stages {
            push(
                &mut report,
                Lint::MalformedNetlist,
                None,
                format!(
                    "netlist claims {} folded state(s) / {} stage(s), but the schedule has {} / {}",
                    m.fold_states,
                    m.stages,
                    sched.fold_states(),
                    sched.num_stages()
                ),
            );
        }
    }

    for (lint, cell, message) in structural::structural_findings(m, ctx, cfg) {
        push(&mut report, lint, cell, message);
    }

    let mut timing = ChainTiming::new(ctx.library, ctx.clock);
    let summary = analyze_timing(m, &mut timing);
    for ep in &summary.endpoints {
        if ep.slack_ps < 0.0 {
            push(
                &mut report,
                Lint::SetupViolation,
                Some(ep.cell),
                format!(
                    "path into `{}` takes {:.1} ps, {:.1} ps past the {:.0} ps clock",
                    ep.name,
                    ep.delay_ps,
                    -ep.slack_ps,
                    ctx.clock.period_ps()
                ),
            );
        }
    }
    report.timing = Some(summary);

    report.sort_canonical();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_nir::{Cell, CellKind};

    fn fixture() -> (TechLibrary, ClockConstraint) {
        (
            TechLibrary::artisan_90nm_typical(),
            ClockConstraint::from_period_ps(1600.0),
        )
    }

    #[test]
    fn malformed_netlists_deny_and_skip_timing() {
        let mut m = NirModule::new("bad");
        m.push(CellKind::Resize, 8, vec![CellId::from_raw(99)]);
        let (lib, clock) = fixture();
        let report = analyze(&m, &LintContext::new(&lib, clock), &LintConfig::default());
        assert!(report.has_deny());
        assert_eq!(report.count_of(Lint::MalformedNetlist), 1);
        assert!(report.timing.is_none());
        assert!(report.to_json().contains("malformed-netlist"));
    }

    #[test]
    fn severity_overrides_silence_or_gate_findings() {
        let mut m = NirModule::new("t");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let c = m.push(CellKind::Const(5), 8, vec![]);
        m.push(CellKind::Reg { init: 0 }, 8, vec![c, en]);
        let (lib, clock) = fixture();
        let ctx = LintContext::new(&lib, clock);
        let warn = analyze(&m, &ctx, &LintConfig::default());
        assert_eq!(warn.count_of(Lint::DeadRegister), 1);
        assert!(!warn.has_deny());
        let deny = analyze(
            &m,
            &ctx,
            &LintConfig::default().set(Lint::DeadRegister, Severity::Deny),
        );
        assert!(deny.has_deny());
        let allow = analyze(
            &m,
            &ctx,
            &LintConfig::default().set(Lint::DeadRegister, Severity::Allow),
        );
        assert_eq!(allow.count_of(Lint::DeadRegister), 0);
    }

    #[test]
    fn setup_violations_surface_with_the_endpoint_name() {
        let mut m = NirModule::new("slow");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let r = m.add_cell(Cell {
            kind: CellKind::Reg { init: 0 },
            width: 32,
            inputs: vec![],
            name: Some("src".into()),
        });
        m.cells[r.index()].inputs = vec![r, en];
        let p = m.push(CellKind::Bin(hls_nir::BinKind::Mul), 32, vec![r, r]);
        let p2 = m.push(CellKind::Bin(hls_nir::BinKind::Mul), 32, vec![p, r]);
        let cap = m.add_cell(Cell {
            kind: CellKind::Reg { init: 0 },
            width: 32,
            inputs: vec![p2, en],
            name: Some("cap".into()),
        });
        let _ = cap;
        let (lib, clock) = fixture();
        let ctx = LintContext::new(&lib, clock);
        // two chained multipliers cannot fit 1600 ps (40+930+930+40 = 1940)
        let report = analyze(&m, &ctx, &LintConfig::default());
        assert_eq!(report.count_of(Lint::SetupViolation), 1);
        let d = &report.diagnostics[0];
        assert!(d.message.contains("cap"), "{d:?}");
        assert_eq!(d.severity, Severity::Warn);
        let t = report.timing.as_ref().expect("timing ran");
        assert!((t.critical_delay_ps() - 1940.0).abs() < 0.1);
        assert!(!t.meets_clock());
        // deny_timing() turns the same finding into a gate
        let gated = analyze(&m, &ctx, &LintConfig::deny_timing());
        assert!(gated.has_deny());
    }

    #[test]
    fn schedule_mismatch_is_malformed() {
        let mut m = NirModule::new("t");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let c = m.push(CellKind::Const(5), 8, vec![]);
        let r = m.push(CellKind::Reg { init: 0 }, 8, vec![c, en]);
        let _ = r;
        m.fold_states = 3;
        let sched = ScheduleDesc {
            num_states: 2,
            ii: None,
            ops: Default::default(),
            resources: Default::default(),
        };
        let (lib, clock) = fixture();
        let ctx = LintContext::new(&lib, clock).with_schedule(&sched);
        let report = analyze(&m, &ctx, &LintConfig::default());
        assert_eq!(report.count_of(Lint::MalformedNetlist), 1);
        assert!(report.timing.is_some(), "consistency check does not abort");
    }

    #[test]
    fn reports_are_deterministic() {
        let mut m = NirModule::new("t");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let c = m.push(CellKind::Const(5), 8, vec![]);
        m.push(CellKind::Reg { init: 0 }, 8, vec![c, en]);
        m.push(CellKind::Reg { init: 1 }, 8, vec![c, en]);
        let (lib, clock) = fixture();
        let ctx = LintContext::new(&lib, clock);
        let a = analyze(&m, &ctx, &LintConfig::default());
        let b = analyze(&m, &ctx, &LintConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }
}
