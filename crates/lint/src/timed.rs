//! Timing-driven netlist rewriting: the STA feedback loop.
//!
//! PR 7's per-state static timing analysis can *see* operator chains and
//! steering spines that miss the clock; this module acts on that signal.
//! [`optimize_timed`] alternates analysis and rewriting:
//!
//! 1. run [`analyze_timing`] — if the worst slack is already non-negative,
//!    return immediately with the netlist untouched (zero churn on clean
//!    designs, and the structural guarantee behind the "stats identical
//!    when all slacks are positive" acceptance property);
//! 2. compute the failing cone with [`critical_cells`] and hand it as the
//!    eligibility mask to the `hls_nir` timing rewrites — operator
//!    chain/tree rebalancing, constant-shift strength reduction and
//!    register retiming — so passing regions are never rewritten;
//! 3. re-analyze; keep the round only if the worst slack strictly improved
//!    (by at least [`MIN_GAIN_PS`] — the delay model quantizes to 5 ps
//!    steps, so a smaller "gain" is numerical noise), otherwise restore
//!    the pre-round netlist and stop.
//!
//! The accept-or-revert step makes the loop monotone by construction:
//! `optimize_timed` can never worsen WNS, terminates within
//! [`MAX_ROUNDS`], and is deterministic (every pass walks the dense cell
//! arena in index/topological order; the analysis is a pure function of
//! the module). The rewrites themselves are the verified `hls_nir`
//! passes, so the caller's contract — `validate()` clean before implies
//! clean after, bit-exact under `random_check_nir` — is inherited, not
//! re-proven here.

use hls_netlist::ChainTiming;
use hls_nir::{
    normalize, rebalance_operator_chains, retime_registers, strength_reduce_shifts, sweep,
    NirModule,
};
use hls_tech::{ClockConstraint, TechLibrary};

use crate::sta::{analyze_timing, critical_cells, TimingSummary};

/// Upper bound on analyze→rewrite rounds. Each accepted round must improve
/// WNS by [`MIN_GAIN_PS`], so the loop terminates long before this; the
/// bound is a backstop against delay-model pathologies. When the backstop
/// actually fires the report says so ([`TimedRewriteReport::hit_round_limit`])
/// and the `hls` facade surfaces it as a `rewrite-round-limit` lint finding.
pub const MAX_ROUNDS: usize = 32;

/// Minimum worst-slack improvement (picoseconds) for a round to be kept.
/// The Figure 8 delay model is quantized in 5 ps steps; anything below
/// this is floating-point noise, and keeping such a round would let the
/// loop churn without progress.
const MIN_GAIN_PS: f64 = 0.5;

/// What [`optimize_timed`] did: per-pass rewrite counts, accepted round
/// count, and the timing summaries bracketing the run.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedRewriteReport {
    /// Analyze→rewrite rounds that were kept (improved WNS). 0 means the
    /// netlist was already clean, the clock is infeasible, or no rewrite
    /// found traction — in every such case the netlist is untouched.
    pub rounds: usize,
    /// Associative operator chains rebuilt as balanced trees.
    pub rebalanced_ops: usize,
    /// Constant-amount shifts reduced to slice/resize wiring.
    pub reduced_shifts: usize,
    /// Registers retimed forward across combinational cells.
    pub retimed: usize,
    /// Constant/identity normalizations cleaning up after the passes.
    pub normalized: usize,
    /// Dead cells swept after the accepted rounds.
    pub swept: usize,
    /// Timing before any rewriting.
    pub before: TimingSummary,
    /// Timing of the returned netlist. Equal to `before` when `rounds` is
    /// 0 (the netlist is then byte-identical to the input).
    pub after: TimingSummary,
    /// The loop stopped because it spent its whole round budget with timing
    /// still failing — the search was cut off by the backstop, not by
    /// convergence (fixpoint, revert, or non-negative slack).
    pub hit_round_limit: bool,
}

impl TimedRewriteReport {
    /// Whether the netlist was modified.
    pub fn changed(&self) -> bool {
        self.rounds > 0
    }

    /// Worst-slack improvement, picoseconds (0 when nothing changed;
    /// never negative by construction).
    pub fn wns_gain_ps(&self) -> f64 {
        self.after.wns_ps - self.before.wns_ps
    }
}

/// Timing-driven rewrite loop over a validated netlist. See the module
/// docs for the round structure and the monotonicity argument.
///
/// The caller owns re-verification policy: the synthesizer re-runs
/// `hls_nir::validate` and the netlist differential after a changed run,
/// exactly as it does for the untimed `optimize()`.
pub fn optimize_timed(
    m: &mut NirModule,
    library: &TechLibrary,
    clock: ClockConstraint,
) -> TimedRewriteReport {
    optimize_timed_with(m, library, clock, MAX_ROUNDS)
}

/// [`optimize_timed`] with an explicit round budget instead of
/// [`MAX_ROUNDS`]. The facade's recovery policy uses this to grant a run
/// that hit the backstop more rounds; tests use it to force the backstop
/// cheaply.
pub fn optimize_timed_with(
    m: &mut NirModule,
    library: &TechLibrary,
    clock: ClockConstraint,
    max_rounds: usize,
) -> TimedRewriteReport {
    let mut timing = ChainTiming::new(library, clock);
    let before = analyze_timing(m, &mut timing);
    let mut report = TimedRewriteReport {
        rounds: 0,
        rebalanced_ops: 0,
        reduced_shifts: 0,
        retimed: 0,
        normalized: 0,
        swept: 0,
        before: before.clone(),
        after: before.clone(),
        hit_round_limit: false,
    };
    // Clean netlists are returned untouched; a clock below the flip-flop
    // launch+capture floor can never be met by restructuring, so don't
    // churn the netlist chasing it.
    if before.wns_ps >= 0.0 || clock.period_ps() < timing.register_overhead_ps() {
        return report;
    }

    let mut current = before;
    for _ in 0..max_rounds {
        let mask = critical_cells(m, &current);
        let snapshot = m.clone();
        let rebalanced = rebalance_operator_chains(m, Some(&mask));
        let reduced = strength_reduce_shifts(m, Some(&mask));
        let retimed = retime_registers(m, Some(&mask));
        if rebalanced + reduced + retimed == 0 {
            break;
        }
        // Clean up rewrite residue before re-measuring: retiming orphans
        // its source registers, rebalancing orphans the old spine.
        let normalized = normalize(m);
        let swept = sweep(m);
        let after = analyze_timing(m, &mut timing);
        if after.wns_ps >= current.wns_ps + MIN_GAIN_PS {
            current = after;
            report.rounds += 1;
            report.rebalanced_ops += rebalanced;
            report.reduced_shifts += reduced;
            report.retimed += retimed;
            report.normalized += normalized;
            report.swept += swept;
        } else {
            *m = snapshot;
            break;
        }
        if current.wns_ps >= 0.0 {
            break;
        }
    }
    // Every round was accepted and slack is still negative: the budget, not
    // convergence, ended the search.
    report.hit_round_limit = report.rounds == max_rounds && current.wns_ps < 0.0;
    report.after = current;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_nir::{validate, BinKind, Cell, CellId, CellKind};

    fn fixture(period: f64) -> (TechLibrary, ClockConstraint) {
        (
            TechLibrary::artisan_90nm_typical(),
            ClockConstraint::from_period_ps(period),
        )
    }

    fn named(
        m: &mut NirModule,
        kind: CellKind,
        width: u16,
        inputs: Vec<CellId>,
        name: &str,
    ) -> CellId {
        m.add_cell(Cell {
            kind,
            width,
            inputs,
            name: Some(name.to_string()),
        })
    }

    /// An 8-term add spine: 40 + 7*350 + 40 = 2530 ps linear, 40 + 3*350
    /// + 40 = 1130 ps balanced.
    fn add_spine() -> NirModule {
        let mut m = NirModule::new("spine");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let mut regs = Vec::new();
        for k in 0..8 {
            let r = named(
                &mut m,
                CellKind::Reg { init: 0 },
                32,
                vec![],
                &format!("r{k}"),
            );
            m.cells[r.index()].inputs = vec![r, en];
            regs.push(r);
        }
        let mut acc = regs[0];
        for &r in &regs[1..] {
            acc = m.push(CellKind::Bin(BinKind::Add), 32, vec![acc, r]);
        }
        named(&mut m, CellKind::Reg { init: 0 }, 32, vec![acc, en], "cap");
        validate(&m).expect("well-formed");
        m
    }

    #[test]
    fn clean_netlists_are_untouched() {
        let mut m = add_spine();
        let reference = m.clone();
        let (lib, clock) = fixture(3000.0); // 2530 ps path passes easily
        let report = optimize_timed(&mut m, &lib, clock);
        assert!(!report.changed());
        assert_eq!(report.before, report.after);
        assert_eq!(m, reference, "zero churn");
    }

    #[test]
    fn failing_spines_are_rebalanced_to_meet_the_clock() {
        let mut m = add_spine();
        let (lib, clock) = fixture(1600.0); // 2530 ps linear fails
        let report = optimize_timed(&mut m, &lib, clock);
        assert!(report.changed());
        assert!(report.before.wns_ps < 0.0);
        assert!(report.after.wns_ps >= 0.0, "{:?}", report.after.wns_ps);
        assert!(report.rebalanced_ops >= 1);
        assert!(report.wns_gain_ps() > 0.0);
        validate(&m).unwrap();
        // and the result is a fixpoint: a second run changes nothing
        let reference = m.clone();
        let again = optimize_timed(&mut m, &lib, clock);
        assert!(!again.changed());
        assert_eq!(m, reference);
    }

    #[test]
    fn infeasible_clocks_do_not_churn() {
        let mut m = add_spine();
        let reference = m.clone();
        let (lib, clock) = fixture(50.0); // below the 80 ps register floor
        let report = optimize_timed(&mut m, &lib, clock);
        assert!(!report.changed());
        assert_eq!(m, reference);
    }

    #[test]
    fn hopeless_but_feasible_clocks_leave_the_netlist_valid() {
        // 500 ps: balanced depth-3 adds still fail, but the loop keeps the
        // improvement it found and stops.
        let mut m = add_spine();
        let (lib, clock) = fixture(500.0);
        let report = optimize_timed(&mut m, &lib, clock);
        assert!(report.after.wns_ps >= report.before.wns_ps);
        validate(&m).unwrap();
        let again = optimize_timed(&mut m, &lib, clock);
        assert!(again.after.wns_ps >= again.before.wns_ps);
        assert_eq!(again.after.wns_ps, report.after.wns_ps, "deterministic");
    }

    #[test]
    fn a_one_round_budget_that_keeps_failing_reports_the_limit() {
        // At 1000 ps even the balanced depth-3 spine (1130 ps) fails, so
        // round 1 is accepted (linear → balanced improves WNS) and the
        // budget ends the search with slack still negative.
        let mut m = add_spine();
        let (lib, clock) = fixture(1000.0);
        let report = optimize_timed_with(&mut m, &lib, clock, 1);
        assert_eq!(report.rounds, 1);
        assert!(report.after.wns_ps < 0.0);
        assert!(report.hit_round_limit);
        validate(&m).unwrap();
    }

    #[test]
    fn converged_runs_do_not_claim_the_limit() {
        // Clean run (no rounds) and a successful rebalance (stops on
        // wns >= 0) both converge — neither is a backstop hit.
        let mut clean = add_spine();
        let (lib, relaxed) = fixture(3000.0);
        assert!(!optimize_timed(&mut clean, &lib, relaxed).hit_round_limit);
        let mut fixed = add_spine();
        let (_, tight) = fixture(1600.0);
        let report = optimize_timed(&mut fixed, &lib, tight);
        assert!(report.after.wns_ps >= 0.0);
        assert!(!report.hit_round_limit);
        // A run that stops by revert/fixpoint (500 ps: improvements dry up
        // before 32 accepted rounds) converges too.
        let mut hopeless = add_spine();
        let (_, infight) = fixture(500.0);
        assert!(!optimize_timed(&mut hopeless, &lib, infight).hit_round_limit);
    }

    #[test]
    fn reports_are_deterministic() {
        let (lib, clock) = fixture(1600.0);
        let mut a = add_spine();
        let mut b = add_spine();
        let ra = optimize_timed(&mut a, &lib, clock);
        let rb = optimize_timed(&mut b, &lib, clock);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }
}
