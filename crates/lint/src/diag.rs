//! Diagnostics and the lint report, with a JSON serialization.
//!
//! The JSON is hand-rolled (the workspace's vendored `serde` is a marker
//! stub, see `vendor/README.md`): a flat object with the module name, the
//! clock, every diagnostic and the timing summary. Numbers print with three
//! decimals so reports are byte-stable across runs.

use crate::config::{Lint, Severity};
use crate::sta::TimingSummary;
use hls_nir::CellId;
use std::fmt::Write as _;

/// One finding of the analyzer.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Which check fired.
    pub lint: Lint,
    /// Severity the finding reports at (after configuration overrides).
    pub severity: Severity,
    /// The cell the finding anchors to, when it concerns a single cell.
    pub cell: Option<CellId>,
    /// Display name of that cell, when it has one.
    pub name: Option<String>,
    /// Human-readable description.
    pub message: String,
}

/// Everything one [`crate::analyze`] call found.
#[derive(Clone, Debug, PartialEq)]
pub struct LintReport {
    /// Name of the analyzed module.
    pub module: String,
    /// Clock period the analysis ran against, picoseconds.
    pub clock_ps: f64,
    /// Findings, deny-level first.
    pub diagnostics: Vec<Diagnostic>,
    /// Static timing summary; absent when validation failed before timing
    /// could run.
    pub timing: Option<TimingSummary>,
}

impl LintReport {
    /// Whether any finding is deny-level (fails the synthesis run).
    pub fn has_deny(&self) -> bool {
        self.deny_count() > 0
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Number of findings of one lint.
    pub fn count_of(&self, lint: Lint) -> usize {
        self.diagnostics.iter().filter(|d| d.lint == lint).count()
    }

    /// Per-lint finding counts, in [`Lint::ALL`] order — the shape the
    /// "optimize introduces no new diagnostics" property compares.
    pub fn counts(&self) -> [usize; Lint::ALL.len()] {
        let mut counts = [0usize; Lint::ALL.len()];
        for d in &self.diagnostics {
            let i = Lint::ALL.iter().position(|&l| l == d.lint).expect("in ALL");
            counts[i] += 1;
        }
        counts
    }

    /// Restores the canonical diagnostic order: deny first, then catalog
    /// order, then anchor cell — a stable order for reports and for the
    /// determinism property.
    pub fn sort_canonical(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| {
                    let pos = |l: Lint| Lint::ALL.iter().position(|&x| x == l).expect("in ALL");
                    pos(a.lint).cmp(&pos(b.lint))
                })
                .then(a.cell.cmp(&b.cell))
        });
    }

    /// Appends a finding produced outside [`crate::analyze`] (the `hls`
    /// facade uses this to surface flow-level findings such as
    /// [`Lint::RewriteRoundLimit`]) and restores the canonical order.
    /// Allow-level findings are dropped, matching the analyzer.
    pub fn push_sorted(&mut self, diagnostic: Diagnostic) {
        if diagnostic.severity == Severity::Allow {
            return;
        }
        self.diagnostics.push(diagnostic);
        self.sort_canonical();
    }

    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lint report for `{}` @ {:.0} ps: {} deny, {} warn",
            self.module,
            self.clock_ps,
            self.deny_count(),
            self.warn_count()
        );
        for d in &self.diagnostics {
            let at = match (&d.cell, &d.name) {
                (Some(c), Some(n)) => format!(" [{c} `{n}`]"),
                (Some(c), None) => format!(" [{c}]"),
                _ => String::new(),
            };
            let _ = writeln!(out, "  {}: {}{}: {}", d.severity, d.lint, at, d.message);
        }
        if let Some(t) = &self.timing {
            let _ = writeln!(
                out,
                "  timing: wns {:.1} ps, tns {:.1} ps over {} endpoint(s)",
                t.wns_ps,
                t.tns_ps,
                t.endpoints.len()
            );
            for s in &t.critical_path {
                let _ = writeln!(
                    out,
                    "    {:>8.1} ps  +{:>6.1}  {} {} (w{}, fanin {})",
                    s.arrival_ps, s.incr_ps, s.kind, s.name, s.width, s.fanin
                );
            }
        }
        out
    }

    /// Serializes the report to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"module\": \"{}\",", esc(&self.module));
        let _ = writeln!(out, "  \"clock_ps\": {},", num(self.clock_ps));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"lint\": \"{}\", \"severity\": \"{}\", ",
                d.lint, d.severity
            );
            match d.cell {
                Some(c) => {
                    let _ = write!(out, "\"cell\": {}, ", c.index());
                }
                None => out.push_str("\"cell\": null, "),
            }
            match &d.name {
                Some(n) => {
                    let _ = write!(out, "\"name\": \"{}\", ", esc(n));
                }
                None => out.push_str("\"name\": null, "),
            }
            let _ = write!(out, "\"message\": \"{}\"}}", esc(&d.message));
        }
        out.push_str(if self.diagnostics.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        match &self.timing {
            None => out.push_str("  \"timing\": null\n"),
            Some(t) => {
                out.push_str("  \"timing\": {\n");
                let _ = writeln!(out, "    \"wns_ps\": {},", num(t.wns_ps));
                let _ = writeln!(out, "    \"tns_ps\": {},", num(t.tns_ps));
                let _ = writeln!(out, "    \"endpoints\": {},", t.endpoints.len());
                out.push_str("    \"critical_path\": [");
                for (i, s) in t.critical_path.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    let _ = write!(
                        out,
                        "      {{\"cell\": {}, \"name\": \"{}\", \"kind\": \"{}\", \
                         \"width\": {}, \"fanin\": {}, \"incr_ps\": {}, \"arrival_ps\": {}}}",
                        s.cell.index(),
                        esc(&s.name),
                        s.kind,
                        s.width,
                        s.fanin,
                        num(s.incr_ps),
                        num(s.arrival_ps)
                    );
                }
                out.push_str(if t.critical_path.is_empty() {
                    "]\n"
                } else {
                    "\n    ]\n"
                });
                out.push_str("  }\n");
            }
        }
        out.push('}');
        out
    }
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number with three stable decimals.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        // JSON has no infinities; clamp to a sentinel.
        format!("{:.3}", if v > 0.0 { f64::MAX } else { f64::MIN })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LintReport {
        LintReport {
            module: "demo \"loop\"".into(),
            clock_ps: 1600.0,
            diagnostics: vec![
                Diagnostic {
                    lint: Lint::DuplicateNetName,
                    severity: Severity::Deny,
                    cell: Some(CellId::from_raw(7)),
                    name: Some("a\nb".into()),
                    message: "collides".into(),
                },
                Diagnostic {
                    lint: Lint::DeadRegister,
                    severity: Severity::Warn,
                    cell: None,
                    name: None,
                    message: "unused".into(),
                },
            ],
            timing: None,
        }
    }

    #[test]
    fn counts_and_gating() {
        let r = report();
        assert!(r.has_deny());
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.count_of(Lint::DeadRegister), 1);
        assert_eq!(r.count_of(Lint::SetupViolation), 0);
        let counts = r.counts();
        assert_eq!(counts.iter().sum::<usize>(), 2);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let j = report().to_json();
        assert!(j.contains("\"module\": \"demo \\\"loop\\\"\""));
        assert!(j.contains("\"a\\nb\""));
        assert!(j.contains("\"lint\": \"duplicate-net-name\""));
        assert!(j.contains("\"severity\": \"deny\""));
        assert!(j.contains("\"cell\": 7"));
        assert!(j.contains("\"cell\": null"));
        assert!(j.contains("\"timing\": null"));
        assert!(j.contains("\"clock_ps\": 1600.000"));
        // balanced braces/brackets (cheap well-formedness proxy)
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn push_sorted_keeps_canonical_order_and_drops_allow() {
        let mut r = report();
        r.push_sorted(Diagnostic {
            lint: Lint::RewriteRoundLimit,
            severity: Severity::Warn,
            cell: None,
            name: None,
            message: "budget spent".into(),
        });
        // deny first, then catalog order: dead-register before
        // rewrite-round-limit
        let lints: Vec<Lint> = r.diagnostics.iter().map(|d| d.lint).collect();
        assert_eq!(
            lints,
            vec![
                Lint::DuplicateNetName,
                Lint::DeadRegister,
                Lint::RewriteRoundLimit
            ]
        );
        let before = r.clone();
        r.push_sorted(Diagnostic {
            lint: Lint::WidthTruncation,
            severity: Severity::Allow,
            cell: None,
            name: None,
            message: "suppressed".into(),
        });
        assert_eq!(r, before, "allow-level findings are dropped");
    }

    #[test]
    fn render_mentions_every_finding() {
        let text = report().render();
        assert!(text.contains("1 deny, 1 warn"));
        assert!(text.contains("deny: duplicate-net-name"));
        assert!(text.contains("warn: dead-register"));
    }
}
