//! The lint catalog and the analyzer configuration.
//!
//! Every check the analyzer performs is named by a [`Lint`] and reports at a
//! [`Severity`]. The defaults are chosen so that a freshly lowered and
//! optimized netlist is clean: findings that indicate a broken lowering
//! (malformed structure, colliding post-sanitize names) deny by default,
//! residue the rewriter should have removed warns, and style-level findings
//! (width-truncating resizes) are allowed unless a project opts in.

use std::fmt;

/// How a finding is reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The finding is suppressed entirely.
    Allow,
    /// The finding appears in the report but does not gate synthesis.
    Warn,
    /// The finding appears in the report and fails the synthesis run.
    Deny,
}

impl Severity {
    /// Lower-case keyword (`allow` / `warn` / `deny`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Every check the analyzer can report. See `LINTS.md` at the repository
/// root for the full catalog with examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lint {
    /// An equality compare pins the FSM state counter to a value it never
    /// takes (outside `0..fold_states`).
    UnreachableFsmState,
    /// A register cell is written but its value is never read.
    DeadRegister,
    /// A mux arm can never be selected (constant or contradictory select).
    DeadMuxArm,
    /// A resize narrows its operand, silently dropping high bits.
    WidthTruncation,
    /// Two distinct display names sanitize to the same Verilog identifier,
    /// so the printer silently drops one of them.
    DuplicateNetName,
    /// A steering-mux tree fans in more sources than the configured bound.
    CombFanin,
    /// A combinational cell computes on constants only — rewrite residue
    /// the normalizer should have folded.
    ConstFoldable,
    /// A register-to-register (or register-to-output) path arrives after
    /// the clock edge: negative slack under the Figure 8 delay model.
    SetupViolation,
    /// The timed-rewrite loop spent its full round budget and stopped with
    /// timing still failing — the netlist kept every improvement found, but
    /// the backstop (not convergence) ended the search.
    RewriteRoundLimit,
    /// The netlist fails structural validation, or disagrees with the
    /// schedule it claims to implement.
    MalformedNetlist,
}

impl Lint {
    /// Every lint, in catalog order.
    pub const ALL: [Lint; 10] = [
        Lint::UnreachableFsmState,
        Lint::DeadRegister,
        Lint::DeadMuxArm,
        Lint::WidthTruncation,
        Lint::DuplicateNetName,
        Lint::CombFanin,
        Lint::ConstFoldable,
        Lint::SetupViolation,
        Lint::RewriteRoundLimit,
        Lint::MalformedNetlist,
    ];

    /// Kebab-case name used in reports and the JSON serialization.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnreachableFsmState => "unreachable-fsm-state",
            Lint::DeadRegister => "dead-register",
            Lint::DeadMuxArm => "dead-mux-arm",
            Lint::WidthTruncation => "width-truncation",
            Lint::DuplicateNetName => "duplicate-net-name",
            Lint::CombFanin => "comb-fanin",
            Lint::ConstFoldable => "const-foldable",
            Lint::SetupViolation => "setup-violation",
            Lint::RewriteRoundLimit => "rewrite-round-limit",
            Lint::MalformedNetlist => "malformed-netlist",
        }
    }

    /// Severity the lint reports at unless overridden by [`LintConfig::set`].
    pub fn default_severity(self) -> Severity {
        match self {
            Lint::MalformedNetlist | Lint::DuplicateNetName => Severity::Deny,
            Lint::WidthTruncation => Severity::Allow,
            _ => Severity::Warn,
        }
    }

    fn index(self) -> usize {
        Lint::ALL.iter().position(|&l| l == self).expect("in ALL")
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-lint severity overrides plus the numeric bounds the structural lints
/// compare against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintConfig {
    severities: [Severity; Lint::ALL.len()],
    /// Largest steering-mux tree fan-in [`Lint::CombFanin`] accepts.
    pub max_comb_fanin: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        let mut severities = [Severity::Allow; Lint::ALL.len()];
        for lint in Lint::ALL {
            severities[lint.index()] = lint.default_severity();
        }
        LintConfig {
            severities,
            max_comb_fanin: 64,
        }
    }
}

impl LintConfig {
    /// The default configuration (see [`Lint::default_severity`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The defaults with [`Lint::SetupViolation`] promoted to deny: timing
    /// becomes a hard gate instead of an advisory report.
    pub fn deny_timing() -> Self {
        Self::default().set(Lint::SetupViolation, Severity::Deny)
    }

    /// Severity the given lint reports at.
    pub fn severity(&self, lint: Lint) -> Severity {
        self.severities[lint.index()]
    }

    /// Overrides one lint's severity.
    pub fn set(mut self, lint: Lint, severity: Severity) -> Self {
        self.severities[lint.index()] = severity;
        self
    }

    /// Overrides the steering fan-in bound of [`Lint::CombFanin`].
    pub fn with_max_comb_fanin(mut self, bound: usize) -> Self {
        self.max_comb_fanin = bound;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_catalog() {
        let cfg = LintConfig::default();
        assert_eq!(cfg.severity(Lint::MalformedNetlist), Severity::Deny);
        assert_eq!(cfg.severity(Lint::DuplicateNetName), Severity::Deny);
        assert_eq!(cfg.severity(Lint::SetupViolation), Severity::Warn);
        assert_eq!(cfg.severity(Lint::WidthTruncation), Severity::Allow);
        assert_eq!(cfg.max_comb_fanin, 64);
    }

    #[test]
    fn overrides_apply_per_lint() {
        let cfg = LintConfig::new()
            .set(Lint::DeadRegister, Severity::Deny)
            .with_max_comb_fanin(8);
        assert_eq!(cfg.severity(Lint::DeadRegister), Severity::Deny);
        assert_eq!(cfg.severity(Lint::DeadMuxArm), Severity::Warn);
        assert_eq!(cfg.max_comb_fanin, 8);
        let timing = LintConfig::deny_timing();
        assert_eq!(timing.severity(Lint::SetupViolation), Severity::Deny);
    }

    #[test]
    fn names_are_kebab_case_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for lint in Lint::ALL {
            assert!(seen.insert(lint.name()), "{lint} duplicated");
            assert!(lint
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
