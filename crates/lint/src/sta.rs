//! Cell-level static timing analysis over a validated netlist.
//!
//! The analyzer replays the paper's Figure 8 delay model on the *lowered*
//! netlist instead of the scheduler's operation chains: every value launched
//! from a register (or a registered source such as an input port or a
//! controller bit) starts at the flip-flop clock-to-Q delay, combinational
//! cells add their Table 1 functional-unit delay, and every path ends at a
//! register or output-port endpoint with the flip-flop setup time.
//!
//! ## Steering trees are charged by fan-in, not by depth
//!
//! The lowering expresses an `n`-way sharing multiplexer as a chain of
//! 2-way [`CellKind::Mux`] cells. Physically that chain is one `mux_n`
//! (synthesis rebalances it into a tree), and the paper's model prices it as
//! such: `mux2` = 110 ps, `mux3` = 115 ps, ~5 ps per further tree level —
//! not 110 ps per chained element. The analyzer therefore computes each mux
//! subtree's *leaf fan-in* and charges [`ChainTiming::mux_tree_delay_ps`]
//! once at the point where the tree's value is consumed by a non-mux cell;
//! inner tree cells are transparent. A select the current state resolves
//! statically is a registered Moore output of the controller and launches at
//! clock-to-Q; a data-dependent select (a predicate computed this cycle)
//! contributes its full combinational arrival.
//!
//! ## The analysis is mode-aware: one pass per folded state
//!
//! In a shared-FU netlist the steering selects are `fsm == k` compares, so a
//! purely topological walk would chase *temporally false* paths: the
//! multiplier's state-2 result into the adder's state-3 steering arm looks
//! like one combinational path even though no single cycle exercises it.
//! The analyzer instead evaluates the control network once per folded state
//! (the state counter pinned to `k`, constants folded through the guard
//! logic), restricts every mux whose select is then statically known to its
//! selected arm, skips register/output endpoints whose enable is statically
//! false in that state, and reports each endpoint's worst arrival over all
//! states. Selects that stay unknown — stage-valid bits, data-dependent
//! predicates — keep both arms, which is the conservative direction.

use hls_ir::CmpKind;
use hls_netlist::ChainTiming;
use hls_nir::{BinKind, CellId, CellKind, NirModule, UnKind};

/// One cell on the critical path, with its contribution to the path delay.
#[derive(Clone, Debug, PartialEq)]
pub struct PathStep {
    /// The cell.
    pub cell: CellId,
    /// Display name (the lowering-assigned net name, or `%id`).
    pub name: String,
    /// Cell-kind mnemonic (`mul`, `mux`, `reg`, ...).
    pub kind: &'static str,
    /// Output width of the cell.
    pub width: u16,
    /// Steering-tree leaf fan-in (1 for non-mux cells; for a mux, the number
    /// of data leaves of the subtree rooted here).
    pub fanin: usize,
    /// Delay this step adds to the path, in picoseconds. Steps telescope:
    /// the sum of all increments equals the endpoint arrival.
    pub incr_ps: f64,
    /// Path arrival time at this step's output, in picoseconds.
    pub arrival_ps: f64,
}

/// One timing endpoint: a register or output-port cell where a
/// combinational path is captured.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingEndpoint {
    /// The capturing cell.
    pub cell: CellId,
    /// Display name of the capturing cell.
    pub name: String,
    /// Total path delay into this endpoint (arrival + setup), picoseconds.
    pub delay_ps: f64,
    /// Slack against the clock; negative means a setup violation.
    pub slack_ps: f64,
}

/// Whole-netlist timing summary: worst slack, total negative slack and the
/// named critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingSummary {
    /// Clock period the slacks are measured against, picoseconds.
    pub clock_ps: f64,
    /// Worst negative slack — the smallest endpoint slack (positive when
    /// every path meets the clock).
    pub wns_ps: f64,
    /// Total negative slack: the sum of all negative endpoint slacks
    /// (0 when timing is met).
    pub tns_ps: f64,
    /// Every endpoint, sorted worst-slack first.
    pub endpoints: Vec<TimingEndpoint>,
    /// The worst path, launch to capture; empty when the netlist has no
    /// endpoints.
    pub critical_path: Vec<PathStep>,
}

impl TimingSummary {
    /// Delay of the worst path (0 when there are no endpoints).
    pub fn critical_delay_ps(&self) -> f64 {
        self.endpoints.first().map(|e| e.delay_ps).unwrap_or(0.0)
    }

    /// Whether every endpoint meets the clock.
    pub fn meets_clock(&self) -> bool {
        self.wns_ps >= 0.0
    }

    /// The critical path as a one-line `a -> b -> c` rendering.
    pub fn critical_path_names(&self) -> String {
        self.critical_path
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Display name of a cell: its lowering-assigned name, or `%id`.
pub(crate) fn cell_name(m: &NirModule, id: CellId) -> String {
    m.cell(id).name.clone().unwrap_or_else(|| format!("{id}"))
}

/// Steering-tree leaf fan-in per cell: 1 for non-mux cells; for a mux, the
/// number of data leaves of the 2-way-mux subtree rooted at it (an arm that
/// is itself a mux contributes its own fan-in, any other arm is one leaf).
pub(crate) fn mux_fanins(m: &NirModule) -> Vec<usize> {
    let mut fanin = vec![1usize; m.num_cells()];
    // Arena order is not topological, so walk the validated topo order.
    for id in m.comb_topo_order() {
        let cell = m.cell(id);
        if let CellKind::Mux { .. } = cell.kind {
            let arm = |x: CellId| match m.cell(x).kind {
                CellKind::Mux { .. } => fanin[x.index()],
                _ => 1,
            };
            fanin[id.index()] = arm(cell.inputs[1]) + arm(cell.inputs[2]);
        }
    }
    fanin
}

/// Statically-known cell values with the FSM state counter pinned to
/// `fsm_state` (or left free with `None`): constants, the counter itself,
/// and control logic folded over them. `None` per cell means unknown.
///
/// This deliberately covers only the shapes the lowering builds guards from
/// — `fsm == k` compares and `and`/`or`/`not` folds — plus enough mux/xor
/// propagation to chase a resolved select through derived control, and
/// width adapters ([`CellKind::Resize`]/[`CellKind::Slice`]) so that
/// rewrite-introduced re-widths on control nets stay transparent: a
/// resolved select threaded through a resize must still resolve, or the
/// rebalanced tree would pick up spurious `comb-fanin`/`dead-mux-arm`
/// findings the pre-rewrite netlist did not have.
pub(crate) fn known_values(m: &NirModule, fsm_state: Option<u64>) -> Vec<Option<u64>> {
    let mask = |v: u64, w: u16| {
        if w >= 64 {
            v
        } else {
            v & ((1u64 << w) - 1)
        }
    };
    // Values are stored masked at their cell's width; re-widening reads
    // them back signed, matching the evaluator's two's-complement model.
    let sext = |v: u64, from: u16| -> u64 {
        if from == 0 || from >= 64 {
            return v;
        }
        if v & (1u64 << (from - 1)) != 0 {
            v | !((1u64 << from) - 1)
        } else {
            v
        }
    };
    let mut known: Vec<Option<u64>> = vec![None; m.num_cells()];
    for id in m.comb_topo_order() {
        let cell = m.cell(id);
        let w = cell.width;
        let input = |k: usize| known[cell.inputs[k].index()];
        let input_width = |k: usize| m.cell(cell.inputs[k]).width;
        known[id.index()] = match &cell.kind {
            CellKind::Const(v) => Some(mask(*v as u64, w)),
            CellKind::FsmState => fsm_state.map(|s| mask(s, w)),
            // Timing is analyzed at steady-state occupancy: every pipeline
            // stage valid, so steering is governed by the folded state
            // alone. Paths that appear only under partial occupancy carry
            // don't-care values (the consumer's capture is stage-gated).
            CellKind::StageValid { .. } => Some(1),
            CellKind::Bin(BinKind::And) => match (input(0), input(1)) {
                (Some(0), _) | (_, Some(0)) => Some(0),
                (Some(a), Some(b)) => Some(a & b),
                _ => None,
            },
            CellKind::Bin(BinKind::Or) => match (input(0), input(1)) {
                (Some(a), _) if a == mask(u64::MAX, w) => Some(a),
                (_, Some(b)) if b == mask(u64::MAX, w) => Some(b),
                (Some(a), Some(b)) => Some(a | b),
                _ => None,
            },
            CellKind::Bin(BinKind::Xor) => match (input(0), input(1)) {
                (Some(a), Some(b)) => Some(a ^ b),
                _ => None,
            },
            CellKind::Bin(BinKind::Cmp(CmpKind::Eq)) => match (input(0), input(1)) {
                (Some(a), Some(b)) => Some(u64::from(a == b)),
                _ => None,
            },
            CellKind::Bin(BinKind::Cmp(CmpKind::Ne)) => match (input(0), input(1)) {
                (Some(a), Some(b)) => Some(u64::from(a != b)),
                _ => None,
            },
            CellKind::Un(UnKind::Not) => input(0).map(|a| mask(!a, w)),
            CellKind::Mux { .. } => match input(0) {
                Some(sel) => input(if sel != 0 { 1 } else { 2 }),
                None => None,
            },
            CellKind::Resize => input(0).map(|a| mask(sext(a, input_width(0)), w)),
            CellKind::Slice { lo, .. } => input(0).map(|a| {
                let wide = sext(a, input_width(0)) as i64;
                mask((wide >> (*lo).min(63)) as u64, w)
            }),
            _ => None,
        };
    }
    known
}

/// Comb cells on a failing cone: every combinational cell reachable
/// backwards from an endpoint with negative slack, stopping at sequential
/// and source cells (registers, ports, constants, controller bits — the
/// launch points of the next path segment). This is the eligibility mask
/// `hls_lint::optimize_timed` hands to the `hls_nir` timing rewrites so
/// that netlists, and netlist regions, that already meet the clock are
/// never churned.
pub fn critical_cells(m: &NirModule, summary: &TimingSummary) -> Vec<bool> {
    let mut mask = vec![false; m.num_cells()];
    let mut stack: Vec<CellId> = Vec::new();
    for ep in &summary.endpoints {
        if ep.slack_ps >= 0.0 {
            continue;
        }
        stack.extend(m.cell(ep.cell).inputs.iter().copied());
    }
    while let Some(id) = stack.pop() {
        let i = id.index();
        if mask[i] {
            continue;
        }
        let cell = m.cell(id);
        if cell.kind.is_seq() || cell.kind.is_source() {
            continue;
        }
        mask[i] = true;
        stack.extend(cell.inputs.iter().copied());
    }
    mask
}

/// Per-endpoint slack, indexed by cell: `Some(slack_ps)` for every register
/// and output-port cell, `None` elsewhere. A reusable query form of
/// [`analyze_timing`]'s report for callers that want to interrogate
/// specific cells (rewrite gating, binding heuristics) instead of reading
/// the sorted endpoint list.
pub fn endpoint_slacks(m: &NirModule, timing: &mut ChainTiming) -> Vec<Option<f64>> {
    let summary = analyze_timing(m, timing);
    let mut slacks = vec![None; m.num_cells()];
    for ep in &summary.endpoints {
        slacks[ep.cell.index()] = Some(ep.slack_ps);
    }
    slacks
}

/// One state's arrival-time pass: per cell, the arrival at its output
/// (`val`), the arrival before the mux-tree charge (`base`), and the worst
/// predecessor with the value it contributed (for path recovery).
struct TimingPass {
    val: Vec<f64>,
    pred: Vec<Option<CellId>>,
    pred_val: Vec<f64>,
}

fn timing_pass(
    m: &NirModule,
    timing: &mut ChainTiming,
    fanin: &[usize],
    known: &[Option<u64>],
) -> TimingPass {
    let n = m.num_cells();
    let launch = timing.register_arrival_ps();
    let mut val = vec![0.0f64; n];
    let mut base = vec![0.0f64; n];
    let mut pred: Vec<Option<CellId>> = vec![None; n];
    let mut pred_val = vec![0.0f64; n];

    for id in m.comb_topo_order() {
        let cell = m.cell(id);
        let i = id.index();
        if cell.kind.is_seq() || matches!(cell.kind, CellKind::Input { .. }) {
            // Registers and port samples launch from a flip-flop.
            val[i] = launch;
            base[i] = launch;
            continue;
        }
        if cell.kind.is_source() {
            // Controller bits are registers in the emitted RTL; constants
            // are static.
            let a = match cell.kind {
                CellKind::Const(_) => 0.0,
                _ => launch,
            };
            val[i] = a;
            base[i] = a;
            continue;
        }
        if let CellKind::Mux { .. } = cell.kind {
            // Candidate arrivals: the select, each *active* arm at its base
            // when the arm is an inner tree cell (its own tree charge is
            // subsumed by this root's fan-in charge). A select resolved by
            // the current state restricts the candidates to the selected
            // arm — the other arm is a different state's path — and counts
            // as a registered control line: per the paper's model the
            // steering decode is a Moore output of the controller, so it
            // launches at clock-to-Q rather than re-tracing the state
            // compare logic. Data-dependent selects (predicates computed
            // this cycle) keep their full combinational arrival.
            let sel = cell.inputs[0];
            let resolved = known[sel.index()].is_some();
            let sel_arrival = if resolved { launch } else { val[sel.index()] };
            let arms: &[CellId] = match known[sel.index()] {
                Some(s) => {
                    let picked = if s != 0 { 1 } else { 2 };
                    &cell.inputs[picked..=picked]
                }
                None => &cell.inputs[1..],
            };
            let mut best: Option<(CellId, f64)> = None;
            for &armed in arms {
                let v = match m.cell(armed).kind {
                    CellKind::Mux { .. } => base[armed.index()],
                    _ => val[armed.index()],
                };
                if best.map(|(_, b)| v > b).unwrap_or(true) {
                    best = Some((armed, v));
                }
            }
            let (mut bp, mut bv) = best.expect("muxes have at least one active arm");
            if sel_arrival > bv {
                (bp, bv) = (sel, sel_arrival);
            }
            base[i] = bv;
            val[i] = bv + timing.mux_tree_delay_ps(fanin[i], cell.width);
            // A winning *resolved* select has no meaningful predecessor
            // chain (its combinational decode is not what launches the
            // path), so the path starts here, at the control register.
            pred[i] = (bp != sel || !resolved).then_some(bp);
            pred_val[i] = bv;
            continue;
        }
        // Plain combinational cell (including Output sinks, whose own
        // "delay" is zero — the setup charge is added at the endpoint).
        let mut best: Option<(CellId, f64)> = None;
        for &input in &cell.inputs {
            let v = val[input.index()];
            if best.map(|(_, b)| v > b).unwrap_or(true) {
                best = Some((input, v));
            }
        }
        let in_widths: Vec<u16> = cell.inputs.iter().map(|&x| m.cell(x).width).collect();
        let delay = timing.cell_delay_ps(&cell.kind, &in_widths, cell.width);
        let (p, b) = best.unwrap_or((id, 0.0));
        val[i] = b + delay;
        base[i] = val[i];
        if p != id {
            pred[i] = Some(p);
            pred_val[i] = b;
        }
    }

    TimingPass {
        val,
        pred,
        pred_val,
    }
}

/// The capturing endpoint's worst input in one state's pass: every register
/// and output-port cell captures `max(data, enable)` plus the flip-flop
/// setup. The lowering registers producers directly (no register-input
/// mux), so no mux charge is added here.
fn endpoint_arrival(m: &NirModule, pass: &TimingPass, id: CellId) -> (Option<CellId>, f64) {
    let mut best: Option<(CellId, f64)> = None;
    for &input in &m.cell(id).inputs {
        let v = pass.val[input.index()];
        if best.map(|(_, b)| v > b).unwrap_or(true) {
            best = Some((input, v));
        }
    }
    match best {
        Some((p, arrival)) => (Some(p), arrival),
        None => (None, 0.0),
    }
}

/// Whether an endpoint can capture in the current state: its enable operand
/// is not statically false. Register and output cells carry the enable as
/// their second input.
fn endpoint_active(m: &NirModule, known: &[Option<u64>], id: CellId) -> bool {
    match m.cell(id).inputs.get(1) {
        Some(en) => known[en.index()] != Some(0),
        None => true,
    }
}

/// Runs the analysis. The module must be [`hls_nir::validate`]-clean;
/// combinational cycles would silently truncate the topological order.
pub fn analyze_timing(m: &NirModule, timing: &mut ChainTiming) -> TimingSummary {
    let n = m.num_cells();
    let fanin = mux_fanins(m);
    let setup = timing.setup_ps();
    let clock = timing.clock();

    // One pass per folded state; a netlist without a folded controller
    // (pipelined II=1 or fully combinational) gets a single free pass.
    let states: Vec<Option<u64>> = if m.fold_states > 1 {
        (0..m.fold_states).map(|k| Some(u64::from(k))).collect()
    } else {
        vec![None]
    };

    // Per endpoint cell: the worst (arrival, state index) over all states
    // in which the endpoint's enable can be true.
    let mut worst: Vec<Option<(f64, usize)>> = vec![None; n];
    for (si, &st) in states.iter().enumerate() {
        let known = known_values(m, st);
        let pass = timing_pass(m, timing, &fanin, &known);
        for (id, cell) in m.iter_cells() {
            if !matches!(cell.kind, CellKind::Reg { .. } | CellKind::Output { .. }) {
                continue;
            }
            if !endpoint_active(m, &known, id) {
                continue;
            }
            let (_, arrival) = endpoint_arrival(m, &pass, id);
            if worst[id.index()].map(|(a, _)| arrival > a).unwrap_or(true) {
                worst[id.index()] = Some((arrival, si));
            }
        }
    }

    let mut endpoints = Vec::new();
    for (id, cell) in m.iter_cells() {
        if !matches!(cell.kind, CellKind::Reg { .. } | CellKind::Output { .. }) {
            continue;
        }
        // An endpoint inactive in every state never captures; report it at
        // the setup floor rather than dropping it from the summary.
        let arrival = worst[id.index()].map(|(a, _)| a).unwrap_or(0.0);
        let delay = arrival + setup;
        endpoints.push(TimingEndpoint {
            cell: id,
            name: cell_name(m, id),
            delay_ps: delay,
            slack_ps: clock.slack_ps(delay),
        });
    }
    endpoints.sort_by(|a, b| {
        a.slack_ps
            .partial_cmp(&b.slack_ps)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cell.cmp(&b.cell))
    });

    let wns_ps = endpoints
        .first()
        .map(|e| e.slack_ps)
        .unwrap_or_else(|| clock.usable_period_ps());
    let tns_ps = endpoints.iter().map(|e| e.slack_ps.min(0.0)).sum::<f64>();

    // Recover the worst path by re-running the winning endpoint's state and
    // walking the recorded predecessors, carrying the value each link
    // actually contributed so increments telescope.
    let mut critical_path = Vec::new();
    if let Some(worst_ep) = endpoints.first() {
        let e = worst_ep.cell;
        let si = worst[e.index()].map(|(_, s)| s).unwrap_or(0);
        let known = known_values(m, states[si]);
        let pass = timing_pass(m, timing, &fanin, &known);
        let (end_pred, _) = endpoint_arrival(m, &pass, e);
        let cell = m.cell(e);
        let mut cursor = end_pred.filter(|&p| p != e);
        let upstream = cursor.map(|p| pass.val[p.index()]).unwrap_or(0.0);
        critical_path.push(PathStep {
            cell: e,
            name: cell_name(m, e),
            kind: cell.kind.mnemonic(),
            width: cell.width,
            fanin: 1,
            incr_ps: worst_ep.delay_ps - upstream,
            arrival_ps: worst_ep.delay_ps,
        });
        let mut carried = upstream;
        while let Some(id) = cursor {
            let i = id.index();
            let cell = m.cell(id);
            let from = pass.pred[i].map(|_| pass.pred_val[i]).unwrap_or(0.0);
            critical_path.push(PathStep {
                cell: id,
                name: cell_name(m, id),
                kind: cell.kind.mnemonic(),
                width: cell.width,
                fanin: fanin[i],
                incr_ps: carried - from,
                arrival_ps: carried,
            });
            carried = from;
            cursor = pass.pred[i];
        }
        critical_path.reverse();
    }

    TimingSummary {
        clock_ps: clock.period_ps(),
        wns_ps,
        tns_ps,
        endpoints,
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{Port, PortDirection};
    use hls_nir::{validate, BinKind, Cell, NirModule};
    use hls_tech::{ClockConstraint, TechLibrary};

    fn timing(period: f64) -> (TechLibrary, ClockConstraint) {
        (
            TechLibrary::artisan_90nm_typical(),
            ClockConstraint::from_period_ps(period),
        )
    }

    fn named(
        m: &mut NirModule,
        kind: CellKind,
        width: u16,
        inputs: Vec<CellId>,
        name: &str,
    ) -> CellId {
        m.add_cell(Cell {
            kind,
            width,
            inputs,
            name: Some(name.to_string()),
        })
    }

    /// reg -> mul -> add -> reg: 40 + 930 + 350 + 40 = 1360 ps.
    #[test]
    fn chained_mul_add_matches_figure8_arithmetic() {
        let mut m = NirModule::new("chain");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let a = named(&mut m, CellKind::Reg { init: 0 }, 32, vec![], "a");
        m.cells[a.index()].inputs = vec![a, en];
        let b = named(&mut m, CellKind::Reg { init: 0 }, 32, vec![a, en], "b");
        let p = named(&mut m, CellKind::Bin(BinKind::Mul), 32, vec![a, b], "p");
        let s = named(&mut m, CellKind::Bin(BinKind::Add), 32, vec![p, b], "s");
        let r = named(&mut m, CellKind::Reg { init: 0 }, 32, vec![s, en], "r");
        validate(&m).expect("well-formed");
        let (lib, clock) = timing(1600.0);
        let mut t = ChainTiming::new(&lib, clock);
        let summary = analyze_timing(&m, &mut t);
        assert!(
            (summary.critical_delay_ps() - 1360.0).abs() < 0.1,
            "{summary:?}"
        );
        assert!((summary.wns_ps - 240.0).abs() < 0.1);
        assert_eq!(summary.tns_ps, 0.0);
        let worst = &summary.endpoints[0];
        assert_eq!(worst.cell, r);
        // the path names every cell, launch to capture
        let names: Vec<&str> = summary
            .critical_path
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert!(names.ends_with(&["p", "s", "r"]), "{names:?}");
        // increments telescope to the endpoint delay
        let total: f64 = summary.critical_path.iter().map(|s| s.incr_ps).sum();
        assert!((total - worst.delay_ps).abs() < 1e-9);
        assert!(summary.critical_path_names().contains("->"));
    }

    /// A 4-leaf steering chain is one mux4 (120 ps), not three mux2s.
    #[test]
    fn steering_chains_are_charged_as_one_tree() {
        let mut m = NirModule::new("steer");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let sel = m.push(CellKind::Const(1), 1, vec![]);
        let mut leaves = Vec::new();
        for i in 0..4 {
            let r = named(
                &mut m,
                CellKind::Reg { init: 0 },
                32,
                vec![],
                &format!("l{i}"),
            );
            m.cells[r.index()].inputs = vec![r, en];
            leaves.push(r);
        }
        let m1 = m.push(
            CellKind::Mux { onehot: true },
            32,
            vec![sel, leaves[0], leaves[1]],
        );
        let m2 = m.push(CellKind::Mux { onehot: true }, 32, vec![sel, leaves[2], m1]);
        let m3 = m.push(CellKind::Mux { onehot: true }, 32, vec![sel, leaves[3], m2]);
        let cap = named(&mut m, CellKind::Reg { init: 0 }, 32, vec![m3, en], "cap");
        validate(&m).expect("well-formed");
        let fans = mux_fanins(&m);
        assert_eq!(fans[m1.index()], 2);
        assert_eq!(fans[m2.index()], 3);
        assert_eq!(fans[m3.index()], 4);
        let (lib, clock) = timing(1600.0);
        let mut t = ChainTiming::new(&lib, clock);
        let expected = t.register_arrival_ps() + t.mux_tree_delay_ps(4, 32) + t.setup_ps();
        let summary = analyze_timing(&m, &mut t);
        assert_eq!(summary.endpoints[0].cell, cap);
        assert!(
            (summary.critical_delay_ps() - expected).abs() < 0.1,
            "got {} want {expected}",
            summary.critical_delay_ps()
        );
        // depth-based charging would have been 40 + 3*110 + 40 = 410;
        // fan-in charging gives 40 + mux4 (115) + 40 = 195.
        assert!(summary.critical_delay_ps() < 210.0);
    }

    /// An output port is an endpoint; a tight clock produces negative slack.
    #[test]
    fn output_endpoints_and_negative_slack() {
        let mut m = NirModule::new("out");
        m.ports.push(Port {
            name: "y".into(),
            direction: PortDirection::Output,
            width: 32,
        });
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let r = named(&mut m, CellKind::Reg { init: 0 }, 32, vec![], "r");
        m.cells[r.index()].inputs = vec![r, en];
        let p = named(&mut m, CellKind::Bin(BinKind::Mul), 32, vec![r, r], "p");
        m.push(CellKind::Output { port: 0, state: 0 }, 32, vec![p, en]);
        validate(&m).expect("well-formed");
        let (lib, clock) = timing(500.0);
        let mut t = ChainTiming::new(&lib, clock);
        let summary = analyze_timing(&m, &mut t);
        // 40 + 930 + 40 = 1010 ps against a 500 ps clock
        assert!((summary.critical_delay_ps() - 1010.0).abs() < 0.1);
        assert!((summary.wns_ps + 510.0).abs() < 0.1);
        assert!((summary.tns_ps + 510.0).abs() < 0.1);
        assert!(!summary.meets_clock());
    }

    /// A mux steered by an FSM-state compare only exposes each arm in the
    /// state that selects it, and an endpoint whose enable is false in a
    /// state ignores that state's arrivals — the cross-state "multiplier
    /// feeds next state's adder" path is temporally false and must not be
    /// reported. A data-dependent select keeps both arms (conservative).
    #[test]
    fn cross_state_false_paths_are_pruned() {
        let build = |data_dependent_select: bool| {
            let mut m = NirModule::new("modes");
            m.fold_states = 2;
            let fsm = m.push(CellKind::FsmState, 8, vec![]);
            let k0 = m.push(CellKind::Const(0), 8, vec![]);
            let eq0 = m.push(
                CellKind::Bin(BinKind::Cmp(hls_ir::CmpKind::Eq)),
                1,
                vec![fsm, k0],
            );
            let sel = if data_dependent_select {
                // an unresolvable mode bit: the analyzer must keep both arms
                m.push(CellKind::FirstIter { stage: 0 }, 1, vec![])
            } else {
                eq0
            };
            let r = named(&mut m, CellKind::Reg { init: 0 }, 32, vec![], "r");
            m.cells[r.index()].inputs = vec![r, eq0];
            let p = named(&mut m, CellKind::Bin(BinKind::Mul), 32, vec![r, r], "p");
            // state 0 selects the register, state 1 the multiplier — but the
            // capture register is enabled in state 0 only.
            let d = m.push(CellKind::Mux { onehot: false }, 32, vec![sel, r, p]);
            named(&mut m, CellKind::Reg { init: 0 }, 32, vec![d, eq0], "cap");
            validate(&m).expect("well-formed");
            m
        };
        let (lib, clock) = timing(1600.0);
        // resolved select: only state 0's reg -> mux2 -> cap path counts
        let pruned = analyze_timing(&build(false), &mut ChainTiming::new(&lib, clock));
        let mut t = ChainTiming::new(&lib, clock);
        let short = t.register_arrival_ps() + t.mux_tree_delay_ps(2, 32) + t.setup_ps();
        assert!(
            (pruned.critical_delay_ps() - short).abs() < 0.1,
            "got {} want {short}",
            pruned.critical_delay_ps()
        );
        // data-dependent select: the multiplier arm stays in
        let kept = analyze_timing(&build(true), &mut ChainTiming::new(&lib, clock));
        let long = t.register_arrival_ps()
            + t.cell_delay_ps(&CellKind::Bin(BinKind::Mul), &[32, 32], 32)
            + t.mux_tree_delay_ps(2, 32)
            + t.setup_ps();
        assert!(
            (kept.critical_delay_ps() - long).abs() < 0.1,
            "got {} want {long}",
            kept.critical_delay_ps()
        );
    }

    /// The analysis is a pure function of the module.
    #[test]
    fn analysis_is_deterministic() {
        let mut m = NirModule::new("det");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let r = named(&mut m, CellKind::Reg { init: 0 }, 16, vec![], "r");
        m.cells[r.index()].inputs = vec![r, en];
        let s = named(&mut m, CellKind::Bin(BinKind::Add), 16, vec![r, r], "s");
        let _cap = named(&mut m, CellKind::Reg { init: 0 }, 16, vec![s, en], "cap");
        let (lib, clock) = timing(1600.0);
        let a = analyze_timing(&m, &mut ChainTiming::new(&lib, clock));
        let b = analyze_timing(&m, &mut ChainTiming::new(&lib, clock));
        assert_eq!(a, b);
    }
}
