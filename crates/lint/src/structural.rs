//! Structural lints: checks on the netlist graph itself, independent of the
//! delay model.
//!
//! Each check pushes `(lint, cell, message)` triples; the driver in
//! [`crate::analyze`] attaches severities and filters allowed lints. The
//! checks assume a [`hls_nir::validate`]-clean module (the driver bails out
//! with [`Lint::MalformedNetlist`] before calling in here otherwise).

use crate::config::{Lint, LintConfig};
use crate::sta::{cell_name, mux_fanins};
use crate::LintContext;
use hls_ir::{BitVal, CmpKind};
use hls_nir::{sanitize, BinKind, CellId, CellKind, NirModule};
use std::collections::HashMap;

/// A raw finding before severity assignment.
pub(crate) type Finding = (Lint, Option<CellId>, String);

/// Runs every structural check over the module.
pub(crate) fn structural_findings(
    m: &NirModule,
    ctx: &LintContext,
    cfg: &LintConfig,
) -> Vec<Finding> {
    let mut out = Vec::new();
    duplicate_net_names(m, &mut out);
    dead_registers(m, &mut out);
    fsm_and_mux_reachability(m, &mut out);
    width_truncations(m, &mut out);
    comb_fanin(m, ctx, cfg.max_comb_fanin, &mut out);
    const_foldable(m, &mut out);
    out
}

/// True for cells the Verilog printer declares as named nets; only those
/// compete for identifiers.
fn is_declared(kind: &CellKind) -> bool {
    matches!(
        kind,
        CellKind::Bin(_)
            | CellKind::Un(_)
            | CellKind::Mux { .. }
            | CellKind::Slice { .. }
            | CellKind::Resize
            | CellKind::Reg { .. }
    )
}

/// Two distinct display names that sanitize to the same identifier: the
/// printer keeps the first and silently renames the second to `n<id>`, so
/// the emitted RTL no longer carries the name the lowering assigned.
fn duplicate_net_names(m: &NirModule, out: &mut Vec<Finding>) {
    let mut owner: HashMap<String, String> = ["clk", "rst", "state", "stage_valid", "first_iter"]
        .into_iter()
        .map(|r| (r.to_string(), format!("the reserved identifier `{r}`")))
        .collect();
    for p in &m.ports {
        owner.insert(sanitize(&p.name), format!("port `{}`", p.name));
    }
    for (id, cell) in m.iter_cells() {
        if !is_declared(&cell.kind) {
            continue;
        }
        let Some(name) = &cell.name else { continue };
        let ident = sanitize(name);
        match owner.get(&ident) {
            Some(prev) => out.push((
                Lint::DuplicateNetName,
                Some(id),
                format!("`{name}` sanitizes to `{ident}`, already claimed by {prev}; the printer will drop this name"),
            )),
            None => {
                owner.insert(ident, format!("cell {id} `{name}`"));
            }
        }
    }
}

/// Registers written but never read: storage that can never influence an
/// output (the sweep pass removes these, so survivors indicate a skipped or
/// incomplete rewrite run).
fn dead_registers(m: &NirModule, out: &mut Vec<Finding>) {
    let uses = m.use_counts();
    for (id, cell) in m.iter_cells() {
        if matches!(cell.kind, CellKind::Reg { .. }) && uses[id.index()] == 0 {
            out.push((
                Lint::DeadRegister,
                Some(id),
                format!("register `{}` is written but never read", cell_name(m, id)),
            ));
        }
    }
}

/// Truth value of a select, when it is statically known: a constant, or an
/// FSM-state compare that can never (or always trivially) match.
fn const_truth(m: &NirModule, id: CellId) -> Option<bool> {
    let cell = m.cell(id);
    match &cell.kind {
        CellKind::Const(v) => Some(BitVal::new(*v, cell.width.max(1)).as_i64() != 0),
        CellKind::Bin(BinKind::Cmp(CmpKind::Eq)) => {
            let (a, b) = (cell.inputs[0], cell.inputs[1]);
            fsm_eq_unreachable(m, a, b)
                .or_else(|| fsm_eq_unreachable(m, b, a))
                .map(|()| false)
        }
        _ => None,
    }
}

/// `Some(())` when `fsm` is the state counter and `k` a constant outside its
/// `0..fold_states` range, making `fsm == k` constantly false.
fn fsm_eq_unreachable(m: &NirModule, fsm: CellId, k: CellId) -> Option<()> {
    if !matches!(m.cell(fsm).kind, CellKind::FsmState) {
        return None;
    }
    let CellKind::Const(v) = m.cell(k).kind else {
        return None;
    };
    let value = BitVal::new(v, m.cell(k).width.max(1)).as_u64();
    (value >= u64::from(m.fold_states.max(1))).then_some(())
}

/// FSM-state compares that can never match, and mux arms that can never be
/// selected because their select is statically known.
fn fsm_and_mux_reachability(m: &NirModule, out: &mut Vec<Finding>) {
    for (id, cell) in m.iter_cells() {
        if let CellKind::Bin(BinKind::Cmp(CmpKind::Eq)) = cell.kind {
            let (a, b) = (cell.inputs[0], cell.inputs[1]);
            if fsm_eq_unreachable(m, a, b)
                .or_else(|| fsm_eq_unreachable(m, b, a))
                .is_some()
            {
                out.push((
                    Lint::UnreachableFsmState,
                    Some(id),
                    format!(
                        "compares the FSM state against a value outside 0..{} — never true",
                        m.fold_states
                    ),
                ));
            }
        }
        if let CellKind::Mux { .. } = cell.kind {
            if let Some(truth) = const_truth(m, cell.inputs[0]) {
                let dead = if truth { "else" } else { "then" };
                out.push((
                    Lint::DeadMuxArm,
                    Some(id),
                    format!("select is constantly {truth}; the {dead} arm can never be selected"),
                ));
            }
        }
    }
}

/// Resizes that narrow their operand: legal (the evaluator truncates), but
/// high bits are silently dropped.
fn width_truncations(m: &NirModule, out: &mut Vec<Finding>) {
    for (id, cell) in m.iter_cells() {
        if matches!(cell.kind, CellKind::Resize) {
            let from = m.cell(cell.inputs[0]).width;
            if from > cell.width {
                out.push((
                    Lint::WidthTruncation,
                    Some(id),
                    format!(
                        "resize narrows w{from} to w{}, dropping high bits",
                        cell.width
                    ),
                ));
            }
        }
    }
}

/// Steering trees (and the binding they implement) fanning in more sources
/// than the configured bound: a mux_n past the bound is a long combinational
/// hop and an area hot-spot.
fn comb_fanin(m: &NirModule, ctx: &LintContext, bound: usize, out: &mut Vec<Finding>) {
    let fanins = mux_fanins(m);
    // Only report tree roots: a mux consumed as another mux's arm is an
    // inner element of the same physical mux_n.
    let mut is_arm = vec![false; m.num_cells()];
    for (_, cell) in m.iter_cells() {
        if let CellKind::Mux { .. } = cell.kind {
            for &arm in &cell.inputs[1..] {
                if matches!(m.cell(arm).kind, CellKind::Mux { .. }) {
                    is_arm[arm.index()] = true;
                }
            }
        }
    }
    for (id, cell) in m.iter_cells() {
        if matches!(cell.kind, CellKind::Mux { .. })
            && !is_arm[id.index()]
            && fanins[id.index()] > bound
        {
            out.push((
                Lint::CombFanin,
                Some(id),
                format!(
                    "steering tree fans in {} sources (bound {bound})",
                    fanins[id.index()]
                ),
            ));
        }
    }
    if let Some(b) = ctx.bound {
        let steer = b.max_steering_fanin();
        if steer > bound {
            out.push((
                Lint::CombFanin,
                None,
                format!(
                    "binding steers {steer} operations onto one functional unit (bound {bound})"
                ),
            ));
        }
    }
}

/// Combinational cells whose every operand is a constant: the normalizer
/// folds these, so survivors are rewrite residue.
fn const_foldable(m: &NirModule, out: &mut Vec<Finding>) {
    for (id, cell) in m.iter_cells() {
        let foldable = matches!(
            cell.kind,
            CellKind::Bin(_)
                | CellKind::Un(_)
                | CellKind::Mux { .. }
                | CellKind::Slice { .. }
                | CellKind::Resize
        );
        if !foldable || cell.inputs.is_empty() {
            continue;
        }
        if cell
            .inputs
            .iter()
            .all(|&i| matches!(m.cell(i).kind, CellKind::Const(_)))
        {
            out.push((
                Lint::ConstFoldable,
                Some(id),
                format!(
                    "{} computes on constants only; the normalizer would fold it",
                    cell.kind.mnemonic()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_tech::{ClockConstraint, TechLibrary};

    fn ctx_fixture() -> (TechLibrary, ClockConstraint) {
        (
            TechLibrary::artisan_90nm_typical(),
            ClockConstraint::from_period_ps(1600.0),
        )
    }

    fn findings_of(m: &NirModule, lint: Lint) -> Vec<Finding> {
        let (lib, clock) = ctx_fixture();
        let ctx = crate::LintContext::new(&lib, clock);
        structural_findings(m, &ctx, &LintConfig::default())
            .into_iter()
            .filter(|(l, _, _)| *l == lint)
            .collect()
    }

    fn named_cell(
        m: &mut NirModule,
        kind: CellKind,
        width: u16,
        inputs: Vec<CellId>,
        name: &str,
    ) -> CellId {
        m.add_cell(hls_nir::Cell {
            kind,
            width,
            inputs,
            name: Some(name.to_string()),
        })
    }

    #[test]
    fn sanitize_collisions_are_reported_once_per_extra_name() {
        let mut m = NirModule::new("t");
        let c = m.push(CellKind::Const(1), 8, vec![]);
        // `a.b` and `a-b` both sanitize to `a_b`
        named_cell(&mut m, CellKind::Resize, 8, vec![c], "a.b");
        named_cell(&mut m, CellKind::Resize, 8, vec![c], "a-b");
        // a name that collides with a reserved controller identifier
        named_cell(&mut m, CellKind::Resize, 8, vec![c], "state");
        let hits = findings_of(&m, Lint::DuplicateNetName);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].2.contains("a_b"));
        assert!(hits[1].2.contains("reserved"));
        // distinct identifiers are fine
        let mut clean = NirModule::new("t");
        let c = clean.push(CellKind::Const(1), 8, vec![]);
        named_cell(&mut clean, CellKind::Resize, 8, vec![c], "x1");
        named_cell(&mut clean, CellKind::Resize, 8, vec![c], "x2");
        assert!(findings_of(&clean, Lint::DuplicateNetName).is_empty());
    }

    #[test]
    fn dead_registers_and_const_residue_are_flagged() {
        let mut m = NirModule::new("t");
        let c = m.push(CellKind::Const(3), 8, vec![]);
        let en = m.push(CellKind::Const(1), 1, vec![]);
        named_cell(&mut m, CellKind::Reg { init: 0 }, 8, vec![c, en], "dead");
        let folded = m.push(CellKind::Bin(BinKind::Add), 8, vec![c, c]);
        let _reader = m.push(CellKind::Resize, 16, vec![folded]);
        let dead = findings_of(&m, Lint::DeadRegister);
        assert_eq!(dead.len(), 1);
        assert!(dead[0].2.contains("dead"));
        // the all-const adder and the resize over it are both foldable;
        // the resize reads an adder (non-const), so only the adder fires
        let residue = findings_of(&m, Lint::ConstFoldable);
        assert_eq!(residue.len(), 1, "{residue:?}");
        assert_eq!(residue[0].1, Some(folded));
    }

    #[test]
    fn constant_and_contradictory_selects_kill_mux_arms() {
        let mut m = NirModule::new("t");
        m.fold_states = 4;
        let a = m.push(CellKind::Input { port: 0, state: 0 }, 8, vec![]);
        m.ports.push(hls_ir::Port {
            name: "x".into(),
            direction: hls_ir::PortDirection::Input,
            width: 8,
        });
        let b = m.push(CellKind::Un(hls_nir::UnKind::Not), 8, vec![a]);
        let sel1 = m.push(CellKind::Const(2), 2, vec![]);
        let _m1 = m.push(CellKind::Mux { onehot: false }, 8, vec![sel1, a, b]);
        // FSM == 7 with fold_states = 4: never true
        let fsm = m.push(CellKind::FsmState, 8, vec![]);
        let k = m.push(CellKind::Const(7), 8, vec![]);
        let eq = m.push(CellKind::Bin(BinKind::Cmp(CmpKind::Eq)), 1, vec![fsm, k]);
        let _m2 = m.push(CellKind::Mux { onehot: false }, 8, vec![eq, a, b]);
        let arms = findings_of(&m, Lint::DeadMuxArm);
        assert_eq!(arms.len(), 2, "{arms:?}");
        assert!(arms[0].2.contains("else arm"), "sel const-true: {arms:?}");
        assert!(arms[1].2.contains("then arm"), "sel const-false: {arms:?}");
        let states = findings_of(&m, Lint::UnreachableFsmState);
        assert_eq!(states.len(), 1);
        // an in-range state compare is fine
        let k2 = m.push(CellKind::Const(3), 8, vec![]);
        m.push(CellKind::Bin(BinKind::Cmp(CmpKind::Eq)), 1, vec![fsm, k2]);
        assert_eq!(findings_of(&m, Lint::UnreachableFsmState).len(), 1);
    }

    #[test]
    fn narrowing_resizes_and_wide_fanin_are_flagged() {
        let mut m = NirModule::new("t");
        let c = m.push(CellKind::Const(1), 16, vec![]);
        m.push(CellKind::Resize, 8, vec![c]); // narrowing
        m.push(CellKind::Resize, 32, vec![c]); // widening: fine
        assert_eq!(findings_of(&m, Lint::WidthTruncation).len(), 1);

        let sel = m.push(CellKind::Const(1), 1, vec![]);
        let mut arm = m.push(CellKind::Const(0), 16, vec![]);
        for _ in 0..4 {
            arm = m.push(CellKind::Mux { onehot: true }, 16, vec![sel, c, arm]);
        }
        let (lib, clock) = ctx_fixture();
        let ctx = crate::LintContext::new(&lib, clock);
        let cfg = LintConfig::default().with_max_comb_fanin(3);
        let hits: Vec<_> = structural_findings(&m, &ctx, &cfg)
            .into_iter()
            .filter(|(l, _, _)| *l == Lint::CombFanin)
            .collect();
        // one root with fan-in 5 > 3; inner tree cells are not re-reported
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].2.contains('5'));
    }
}
