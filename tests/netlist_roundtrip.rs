//! Property tests for the structural netlist: random small programs go
//! through the full flow to a lowered [`NirModule`], and the netlist must
//! (a) survive a text round-trip structurally unchanged —
//! `text_parse(text_emit(n)) == n` — and (b) reach a rewrite fixpoint in one
//! `optimize` run (a second run changes nothing). Both properties are
//! checked before and after optimization, and the rewritten netlist must
//! stay differentially bit-exact against the reference interpreter.

use hls::bind::{bind, lower, RtlStyle};
use hls::frontend::ast::{Behavior, BinOp, Expr};
use hls::frontend::BehaviorBuilder;
use hls::ir::CmpKind;
use hls::netlist::{text_emit, text_parse, validate};
use hls::opt::linearize::prepare_innermost_loop;
use hls::sched::{Scheduler, SchedulerConfig};
use hls::sim::differential;
use hls::tech::{ClockConstraint, TechLibrary};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random behaviour (same shape as `prop_differential`): a few
/// variables, a straight-line body of assignments over random expressions,
/// a predicated region, a port write and a trailing wait.
fn random_behavior(seed: u64) -> Behavior {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = BehaviorBuilder::new(format!("nir{seed}"));
    b.port_in("p0", 16);
    b.port_in("p1", 8);
    b.port_out("out", 16);
    let n_vars = rng.gen_range(1usize..=3);
    let widths = [8u16, 16, 32];
    let vars: Vec<_> = (0..n_vars)
        .map(|i| {
            let w = widths[rng.gen_range(0usize..3)];
            let init = rng.gen_range(0u64..64) as i64 - 32;
            b.var(format!("v{i}"), w, init)
        })
        .collect();

    let leaf = |rng: &mut SmallRng, b: &BehaviorBuilder| -> Expr {
        match rng.gen_range(0u32..5) {
            0 => b.read_port("p0"),
            1 => b.read_port("p1"),
            2 | 3 => Expr::Var(vars[rng.gen_range(0usize..vars.len())]),
            _ => Expr::Const(rng.gen_range(0u64..512) as i64 - 256),
        }
    };
    let node = |rng: &mut SmallRng, a: Expr, c: Expr| -> Expr {
        match rng.gen_range(0u32..8) {
            0 => Expr::add(a, c),
            1 => Expr::sub(a, c),
            2 => Expr::mul(a, c),
            3 => Expr::Binary(BinOp::And, Box::new(a), Box::new(c)),
            4 => Expr::Binary(BinOp::Xor, Box::new(a), Box::new(c)),
            5 => Expr::shl(a, Expr::Const(rng.gen_range(0u64..12) as i64)),
            6 => Expr::shr(a, Expr::Const(rng.gen_range(0u64..12) as i64)),
            _ => Expr::select(Expr::cmp(CmpKind::Gt, a.clone(), Expr::Const(0)), a, c),
        }
    };

    let mut body = Vec::new();
    for _ in 0..rng.gen_range(2usize..6) {
        let var = vars[rng.gen_range(0usize..vars.len())];
        let l0 = leaf(&mut rng, &b);
        let l1 = leaf(&mut rng, &b);
        let mut e = node(&mut rng, l0, l1);
        if rng.gen_bool(0.5) {
            let l2 = leaf(&mut rng, &b);
            e = node(&mut rng, e, l2);
        }
        body.push(b.assign(var, e));
    }
    if rng.gen_bool(0.7) {
        let v = vars[rng.gen_range(0usize..vars.len())];
        let cond = Expr::cmp(
            CmpKind::Gt,
            Expr::Var(v),
            Expr::Const(rng.gen_range(0u64..16) as i64),
        );
        let l = leaf(&mut rng, &b);
        let r = leaf(&mut rng, &b);
        body.push(b.if_then_else(
            cond,
            vec![b.assign(v, Expr::mul(l, Expr::Const(3)))],
            vec![b.assign(v, Expr::add(r, Expr::Const(1)))],
        ));
    }
    body.push(b.write_port("out", Expr::Var(vars[rng.gen_range(0usize..vars.len())])));
    body.push(b.wait());
    let l = b.do_while(
        "main",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("p0"), Expr::Const(0)),
    );
    b.infinite_loop(vec![l]);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn lowered_netlists_round_trip_and_rewrites_are_idempotent(
        seed in 0u64..10_000,
        pipelined in any::<bool>(),
        shared in any::<bool>(),
    ) {
        let behavior = random_behavior(seed);
        let mut cdfg = hls::frontend::elaborate(&behavior).expect("elaborates");
        let body = prepare_innermost_loop(&mut cdfg).expect("linearizes");
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(4200.0);
        let config = if pipelined {
            SchedulerConfig::pipelined(clock, 2, 24)
        } else {
            SchedulerConfig::sequential(clock, 1, 24)
        };
        let Ok(schedule) = Scheduler::new(&body, &lib, config).run() else {
            // an over-constrained random instance is acceptable
            return Ok(());
        };
        let bound = bind(&body, &schedule.desc)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: bind: {e}")))?;
        let style = if shared { RtlStyle::SharedFu } else { RtlStyle::PerOp };
        let mut m = lower(&body, &schedule.desc, &bound, style)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: lower: {e}")))?;
        validate(&m).map_err(|e| TestCaseError::fail(format!("seed {seed}: validate: {e}")))?;

        // text round-trip on the freshly lowered netlist
        let reparsed = text_parse(&text_emit(&m))
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: parse: {e}")))?;
        prop_assert_eq!(&reparsed, &m);

        // rewrites reach a fixpoint in one run…
        let r1 = hls::netlist::optimize(&mut m);
        validate(&m).map_err(|e| TestCaseError::fail(format!("seed {seed}: post-opt: {e}")))?;
        prop_assert!(r1.mux_depth_after <= r1.mux_depth_before, "{:?}", r1);
        let fixpoint = m.clone();
        let r2 = hls::netlist::optimize(&mut m);
        prop_assert_eq!(&m, &fixpoint);
        prop_assert_eq!(r2.rebalanced, 0);
        prop_assert_eq!(r2.swept, 0);

        // …and the rewritten netlist still round-trips
        let reparsed = text_parse(&text_emit(&m))
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: re-parse: {e}")))?;
        prop_assert_eq!(&reparsed, &m);

        // rewrites preserved observable behaviour
        differential::random_check_nir(&body, &m, 40, seed)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: differential: {e}")))?;
    }

    /// Netlists containing the timed-rewrite shapes — rebuilt balanced
    /// operator trees, strength-reduced shifts and retimed registers — keep
    /// the text-format contract `text_parse(text_emit(n)) == n` and stay
    /// differentially bit-exact. The passes run unmasked here to maximize
    /// how many of the new cell shapes land in the corpus.
    #[test]
    fn timed_rewrite_shapes_round_trip_and_stay_bit_exact(
        seed in 0u64..10_000,
        pipelined in any::<bool>(),
        shared in any::<bool>(),
    ) {
        let behavior = random_behavior(seed);
        let mut cdfg = hls::frontend::elaborate(&behavior).expect("elaborates");
        let body = prepare_innermost_loop(&mut cdfg).expect("linearizes");
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(4200.0);
        let config = if pipelined {
            SchedulerConfig::pipelined(clock, 2, 24)
        } else {
            SchedulerConfig::sequential(clock, 1, 24)
        };
        let Ok(schedule) = Scheduler::new(&body, &lib, config).run() else {
            return Ok(());
        };
        let bound = bind(&body, &schedule.desc)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: bind: {e}")))?;
        let style = if shared { RtlStyle::SharedFu } else { RtlStyle::PerOp };
        let mut m = lower(&body, &schedule.desc, &bound, style)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: lower: {e}")))?;
        hls::netlist::optimize(&mut m);

        let rebalanced = hls::nir::rebalance_operator_chains(&mut m, None);
        let reduced = hls::nir::strength_reduce_shifts(&mut m, None);
        let retimed = hls::nir::retime_registers(&mut m, None);
        hls::nir::normalize(&mut m);
        hls::nir::sweep(&mut m);
        validate(&m)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: post-timed: {e}")))?;
        let _ = (rebalanced, reduced, retimed);

        // the new cell shapes survive the text format unchanged
        let reparsed = text_parse(&text_emit(&m))
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: parse: {e}")))?;
        prop_assert_eq!(&reparsed, &m);

        // and observable behaviour is untouched
        differential::random_check_nir(&body, &m, 40, seed)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: differential: {e}")))?;
    }
}
