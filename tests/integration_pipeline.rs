//! Pipelining-specific integration tests: folding invariants, stage windows,
//! causality and the modulo baseline.
use hls::designs;
use hls::ir::analysis::sccs;
use hls::opt::linearize::prepare_innermost_loop;
use hls::pipeline::{fold_schedule, modulo_schedule};
use hls::sched::{Scheduler, SchedulerConfig};
use hls::tech::{ClockConstraint, TechLibrary};

fn example1_body() -> hls::ir::LinearBody {
    let mut cdfg = designs::paper_example1_cdfg().expect("elab");
    prepare_innermost_loop(&mut cdfg).expect("prepare")
}

#[test]
fn folded_pipeline_preserves_operation_count_and_deps() {
    let body = example1_body();
    let lib = TechLibrary::artisan_90nm_typical();
    let schedule = Scheduler::new(
        &body,
        &lib,
        SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), 2, 6),
    )
    .run()
    .expect("schedulable");
    let folded = fold_schedule(&body, &schedule).expect("foldable");
    let total: usize = folded.folded_states.iter().map(Vec::len).sum();
    assert_eq!(total, body.dfg.num_ops());
    for dep in body.dfg.data_deps() {
        if dep.distance == 0 {
            assert!(schedule.desc.state_of(dep.from) <= schedule.desc.state_of(dep.to));
        }
    }
}

#[test]
fn scc_is_confined_to_one_stage() {
    let body = example1_body();
    let lib = TechLibrary::artisan_90nm_typical();
    for ii in [1u32, 2] {
        let schedule = Scheduler::new(
            &body,
            &lib,
            SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), ii, 8),
        )
        .run()
        .expect("schedulable");
        for scc in sccs(&body.dfg) {
            let stages: std::collections::HashSet<u32> = scc
                .ops
                .iter()
                .map(|&o| schedule.desc.state_of(o) / ii)
                .collect();
            assert_eq!(stages.len(), 1, "SCC spans stages {stages:?} at II={ii}");
        }
    }
}

#[test]
fn steady_state_throughput_matches_ii() {
    let body = example1_body();
    let lib = TechLibrary::artisan_90nm_typical();
    let schedule = Scheduler::new(
        &body,
        &lib,
        SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), 2, 6),
    )
    .run()
    .expect("schedulable");
    let folded = fold_schedule(&body, &schedule).expect("foldable");
    // 1000 iterations: LI + 999*II cycles
    assert_eq!(folded.total_cycles(1000), u64::from(folded.li) + 999 * 2);
}

#[test]
fn modulo_baseline_needs_at_least_the_unified_ii() {
    let body = example1_body();
    let lib = TechLibrary::artisan_90nm_typical();
    let unified = Scheduler::new(
        &body,
        &lib,
        SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), 2, 8),
    )
    .run()
    .expect("unified");
    let baseline = modulo_schedule(&body, &lib, 1600.0, 1, 8, |c| {
        if matches!(c, hls::tech::ResourceClass::Multiplier) {
            2
        } else {
            4
        }
    })
    .expect("baseline");
    assert!(baseline.ii >= unified.desc.ii.unwrap_or(2) || baseline.ii >= 1);
}
