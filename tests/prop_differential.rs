//! Property-based differential testing: randomly generated small programs go
//! through the *full* flow (builder → elaboration → optimization →
//! linearization → scheduling/binding, sequential or pipelined) and the
//! cycle-accurate simulation of the schedule must agree bit-exactly with the
//! reference interpreter on random input vectors.

use hls::frontend::ast::{Behavior, BinOp, Expr};
use hls::frontend::BehaviorBuilder;
use hls::ir::CmpKind;
use hls::opt::linearize::prepare_innermost_loop;
use hls::sched::{Scheduler, SchedulerConfig};
use hls::sim::differential;
use hls::tech::{ClockConstraint, TechLibrary};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random behaviour: a handful of variables, a straight-line body
/// of assignments over random expressions (arithmetic, logic, shifts,
/// division, selections, a conditional block), a port write and a trailing
/// wait — the shape the paper's front-end consumes.
fn random_behavior(seed: u64) -> Behavior {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = BehaviorBuilder::new(format!("prop{seed}"));
    b.port_in("p0", 16);
    b.port_in("p1", 8);
    b.port_out("out", 16);
    let n_vars = rng.gen_range(1usize..=3);
    let widths = [8u16, 16, 32];
    let vars: Vec<_> = (0..n_vars)
        .map(|i| {
            let w = widths[rng.gen_range(0usize..3)];
            let init = rng.gen_range(0u64..64) as i64 - 32;
            b.var(format!("v{i}"), w, init)
        })
        .collect();

    // leaf: a port read, a variable read or a constant
    let leaf = |rng: &mut SmallRng, b: &BehaviorBuilder| -> Expr {
        match rng.gen_range(0u32..5) {
            0 => b.read_port("p0"),
            1 => b.read_port("p1"),
            2 | 3 => Expr::Var(vars[rng.gen_range(0usize..vars.len())]),
            _ => Expr::Const(rng.gen_range(0u64..512) as i64 - 256),
        }
    };
    let node = |rng: &mut SmallRng, a: Expr, c: Expr| -> Expr {
        match rng.gen_range(0u32..10) {
            0 => Expr::add(a, c),
            1 => Expr::sub(a, c),
            2 => Expr::mul(a, c),
            3 => Expr::Binary(BinOp::And, Box::new(a), Box::new(c)),
            4 => Expr::Binary(BinOp::Xor, Box::new(a), Box::new(c)),
            5 => Expr::shl(a, Expr::Const(rng.gen_range(0u64..20) as i64)),
            6 => Expr::shr(a, Expr::Const(rng.gen_range(0u64..20) as i64)),
            7 => Expr::Binary(BinOp::Div, Box::new(a), Box::new(c)),
            8 => Expr::Binary(BinOp::Rem, Box::new(a), Box::new(c)),
            _ => Expr::select(Expr::cmp(CmpKind::Gt, a.clone(), Expr::Const(0)), a, c),
        }
    };

    let mut body = Vec::new();
    for _ in 0..rng.gen_range(2usize..6) {
        let var = vars[rng.gen_range(0usize..vars.len())];
        let l0 = leaf(&mut rng, &b);
        let l1 = leaf(&mut rng, &b);
        let mut e = node(&mut rng, l0, l1);
        if rng.gen_bool(0.5) {
            let l2 = leaf(&mut rng, &b);
            e = node(&mut rng, e, l2);
        }
        body.push(b.assign(var, e));
    }
    // a predicated region: if-conversion will turn this into predicates and
    // merge muxes
    if rng.gen_bool(0.7) {
        let v = vars[rng.gen_range(0usize..vars.len())];
        let cond = Expr::cmp(
            CmpKind::Gt,
            Expr::Var(v),
            Expr::Const(rng.gen_range(0u64..16) as i64),
        );
        let l = leaf(&mut rng, &b);
        let r = leaf(&mut rng, &b);
        body.push(b.if_then_else(
            cond,
            vec![b.assign(v, Expr::mul(l, Expr::Const(3)))],
            vec![b.assign(v, Expr::add(r, Expr::Const(1)))],
        ));
    }
    body.push(b.write_port("out", Expr::Var(vars[rng.gen_range(0usize..vars.len())])));
    body.push(b.wait());
    let l = b.do_while(
        "main",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("p0"), Expr::Const(0)),
    );
    b.infinite_loop(vec![l]);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn random_programs_are_bit_exact_through_the_full_flow(
        seed in 0u64..10_000,
        pipelined in any::<bool>(),
        vectors in 40usize..80,
    ) {
        let behavior = random_behavior(seed);
        let mut cdfg = hls::frontend::elaborate(&behavior).expect("elaborates");
        let body = prepare_innermost_loop(&mut cdfg).expect("linearizes");
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(4200.0);
        let config = if pipelined {
            SchedulerConfig::pipelined(clock, 2, 24)
        } else {
            SchedulerConfig::sequential(clock, 1, 24)
        };
        let Ok(schedule) = Scheduler::new(&body, &lib, config).run() else {
            // an over-constrained random instance is acceptable
            return Ok(());
        };
        let report = differential::random_check(&body, &schedule.desc, vectors, seed)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
        prop_assert_eq!(report.iterations as usize, vectors);
        prop_assert!(report.writes_checked > 0);
    }
}
