//! Differential verification of the whole flow: for every example design and
//! every paper design, the cycle-accurate simulation of the produced schedule
//! must agree bit-exactly with the reference interpreter — for sequential,
//! separated-binding and modulo-pipelined schedules, on ≥ 100 random input
//! vectors each.

use hls::designs::{fir_filter, moving_average, paper_example1};
use hls::explore::{idct8_design, synthetic_design, DesignClass};
use hls::frontend::{BehaviorBuilder, Expr};
use hls::ir::{CmpKind, LinearBody, PortDirection};
use hls::opt::linearize::prepare_innermost_loop;
use hls::sched::{schedule_separated, Scheduler, SchedulerConfig};
use hls::sim::{differential, ScheduleSim, Stimulus};
use hls::tech::{ClockConstraint, TechLibrary};
use hls::Synthesizer;

const VECTORS: usize = 100;

fn linearize(behavior: &hls::frontend::Behavior) -> LinearBody {
    let mut cdfg = hls::frontend::elaborate(behavior).expect("elaborates");
    prepare_innermost_loop(&mut cdfg).expect("linearizes")
}

fn lib() -> TechLibrary {
    TechLibrary::artisan_90nm_typical()
}

/// Schedules `body` under `config` and differentially verifies the result.
fn check(body: &LinearBody, config: SchedulerConfig, label: &str) {
    let schedule = Scheduler::new(body, &lib(), config)
        .run()
        .unwrap_or_else(|e| panic!("{label}: unschedulable: {e}"));
    let report = differential::random_check(body, &schedule.desc, VECTORS, 0xC0FFEE)
        .unwrap_or_else(|e| panic!("{label}: differential failed: {e}"));
    assert_eq!(report.iterations as usize, VECTORS, "{label}");
    assert!(report.writes_checked > 0, "{label}: nothing compared");
}

/// The quickstart example's multiply-accumulate kernel.
fn mac_behavior() -> hls::frontend::Behavior {
    let mut b = BehaviorBuilder::new("mac");
    b.port_in("a", 16);
    b.port_in("b", 16);
    b.port_in("c", 16);
    b.port_out("y", 32);
    let acc = b.var("acc", 32, 0);
    let body = vec![
        b.assign(
            acc,
            Expr::add(
                Expr::mul(b.read_port("a"), b.read_port("b")),
                b.read_port("c"),
            ),
        ),
        b.write_port("y", b.read_var(acc)),
        b.wait(),
    ];
    let loop_stmt = b.do_while(
        "mac_loop",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("a"), Expr::Const(0)),
    );
    b.infinite_loop(vec![loop_stmt]);
    b.build()
}

#[test]
fn paper_example1_sequential_separated_and_pipelined_agree() {
    let body = linearize(&paper_example1());
    let clk = ClockConstraint::from_period_ps(1600.0);
    check(&body, SchedulerConfig::sequential(clk, 1, 3), "ex1 seq");
    check(&body, SchedulerConfig::pipelined(clk, 2, 6), "ex1 II=2");
    check(&body, SchedulerConfig::pipelined(clk, 1, 6), "ex1 II=1");

    // the classical separated flow fixes states first and binds afterwards;
    // its *functional* behaviour must still be correct (what it gets wrong
    // is the timing slack, not the values)
    let separated = schedule_separated(&body, &lib(), SchedulerConfig::sequential(clk, 1, 3))
        .expect("separated flow schedules");
    let report = differential::random_check(&body, &separated.desc, VECTORS, 0xC0FFEE)
        .expect("separated-binding schedule is bit-exact");
    assert!(report.writes_checked > 0);
}

#[test]
fn quickstart_mac_agrees() {
    let body = linearize(&mac_behavior());
    let clk = ClockConstraint::from_period_ps(1600.0);
    check(&body, SchedulerConfig::sequential(clk, 1, 4), "mac seq");
    check(&body, SchedulerConfig::pipelined(clk, 1, 6), "mac II=1");
}

#[test]
fn fir_filter_agrees_and_sustains_pipeline_throughput() {
    let taps = [3, -5, 7, 11, 11, 7, -5, 3];
    let body = linearize(&fir_filter(&taps, 16));
    let clk = ClockConstraint::from_period_ps(1600.0);
    check(&body, SchedulerConfig::sequential(clk, 1, 16), "fir seq");

    for ii in [4u32, 2, 1] {
        let schedule = Scheduler::new(&body, &lib(), SchedulerConfig::pipelined(clk, ii, 16))
            .run()
            .expect("fir pipelines");
        assert_eq!(schedule.desc.ii, Some(ii), "reported II");
        let stim = Stimulus::random(&body.dfg, VECTORS, 0xF1);
        // correctness: bit-exact against the interpreter
        differential::check(&body, &schedule.desc, &stim)
            .unwrap_or_else(|e| panic!("fir II={ii}: {e}"));
        // throughput: in steady state, exactly one output every II cycles —
        // the pipeline actually sustains 1/II iterations per cycle
        let trace = ScheduleSim::new(&body, &schedule.desc)
            .unwrap()
            .run(&stim)
            .unwrap();
        let out = body
            .dfg
            .iter_ports()
            .find(|(_, p)| p.direction == PortDirection::Output)
            .map(|(id, _)| id)
            .unwrap();
        let intervals = trace.write_intervals(out);
        assert!(
            intervals.len() >= VECTORS - 1 && intervals.iter().all(|&d| d == u64::from(ii)),
            "fir II={ii}: write intervals {intervals:?}"
        );
    }
}

#[test]
fn moving_average_recurrence_agrees() {
    let body = linearize(&moving_average(3, 16));
    let clk = ClockConstraint::from_period_ps(1600.0);
    check(&body, SchedulerConfig::sequential(clk, 1, 4), "ema seq");
    // the single-SCC recurrence limits pipelining; II=2 keeps the SCC in one
    // stage window
    let pipelined = Scheduler::new(&body, &lib(), SchedulerConfig::pipelined(clk, 2, 8)).run();
    if let Ok(schedule) = pipelined {
        let report = differential::random_check(&body, &schedule.desc, VECTORS, 0xE)
            .expect("ema II=2 bit-exact");
        assert!(report.writes_checked > 0);
    }
}

#[test]
fn idct_agrees_sequentially_and_pipelined() {
    let body = idct8_design();
    let clk = ClockConstraint::from_period_ps(2100.0);
    check(&body, SchedulerConfig::sequential(clk, 1, 16), "idct seq");
    check(&body, SchedulerConfig::pipelined(clk, 4, 16), "idct II=4");
}

#[test]
fn synthetic_design_classes_agree() {
    let clk = ClockConstraint::from_period_ps(1800.0);
    for (i, class) in DesignClass::all().into_iter().enumerate() {
        let body = synthetic_design(class, 120, 17 + i as u64);
        check(
            &body,
            SchedulerConfig::sequential(clk, 1, 32),
            &format!("{class:?} seq"),
        );
        let pipelined = Scheduler::new(&body, &lib(), SchedulerConfig::pipelined(clk, 2, 32)).run();
        if let Ok(schedule) = pipelined {
            differential::random_check(&body, &schedule.desc, VECTORS, 31 + i as u64)
                .unwrap_or_else(|e| panic!("{class:?} II=2: {e}"));
        }
    }
}

#[test]
fn facade_verify_hook_validates_the_idct_exploration_path() {
    // the BodySynthesizer route the exploration drivers use, with the
    // verify hook turned on
    let result = Synthesizer::from_body(idct8_design())
        .clock_ps(2600.0)
        .latency_bounds(1, 16)
        .verify(VECTORS)
        .run()
        .expect("idct synthesizes and verifies");
    let report = result.verification.expect("verification ran");
    assert_eq!(report.ports, 8);
    assert!(report.writes_checked >= 8 * VECTORS);
}
