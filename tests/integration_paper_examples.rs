//! Integration tests reproducing the paper's worked examples (Section IV/V).
use hls::designs;
use hls::tech::ResourceClass;
use hls::Synthesizer;

#[test]
fn example1_sequential_three_states_one_multiplier() {
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .run()
        .expect("Example 1 must synthesize");
    assert_eq!(result.schedule.latency, 3, "Table 2: three states");
    assert_eq!(result.schedule.cycles_per_iteration(), 3);
    assert_eq!(
        result
            .schedule
            .desc
            .resources
            .count_of_class(&ResourceClass::Multiplier),
        1
    );
    // the scheduler needed relaxation: it started from latency 1
    assert!(
        result.schedule.passes >= 3,
        "two add-state relaxations expected"
    );
}

#[test]
fn example2_pipelined_ii2_two_multipliers_li3() {
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(2)
        .run()
        .expect("Example 2 must synthesize");
    let folded = result.pipeline.expect("folded");
    assert_eq!(folded.ii, 2);
    assert_eq!(folded.li, 3);
    assert_eq!(folded.stages, 2);
    assert_eq!(
        result
            .schedule
            .desc
            .resources
            .count_of_class(&ResourceClass::Multiplier),
        2
    );
}

#[test]
fn example3_pipelined_ii1_three_multipliers() {
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(1)
        .run()
        .expect("Example 3 must synthesize");
    let folded = result.pipeline.expect("folded");
    assert_eq!(folded.ii, 1);
    assert!(
        folded.li >= 3,
        "LI must exceed 2 because two muls cannot chain in one cycle"
    );
    assert_eq!(
        result
            .schedule
            .desc
            .resources
            .count_of_class(&ResourceClass::Multiplier),
        3
    );
}

#[test]
fn table3_ordering_sequential_cheapest_ii1_fastest() {
    let rows = hls::explore::table3_microarchitectures();
    assert_eq!(rows.len(), 3);
    assert!(rows[0].area < rows[1].area && rows[1].area < rows[2].area);
    assert!(rows[0].cycles_per_iteration > rows[1].cycles_per_iteration);
    assert!(rows[1].cycles_per_iteration > rows[2].cycles_per_iteration);
}
