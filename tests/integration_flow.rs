//! End-to-end flow tests across the front-end, optimizer, scheduler, netlist
//! and RTL emission.
use hls::designs::{fir_filter, moving_average};
use hls::frontend::parser::parse;
use hls::Synthesizer;

#[test]
fn textual_source_flows_to_rtl() {
    let src = r#"
module scaler {
  in x : 16; in k : 16;
  out y : 32;
  var acc : 32 = 0;
  thread {
    acc = x * k + acc;
    y = acc;
    wait;
  }
}
"#;
    let behavior = parse(src).expect("parses");
    let result = Synthesizer::new(behavior)
        .clock_ps(1600.0)
        .latency_bounds(1, 4)
        .run()
        .expect("synthesizes");
    // the RTL is emitted for the linearized loop body (the implicit thread loop)
    assert!(result.rtl.contains("module"));
    assert!(result.rtl.contains("acc"));
    assert!(result.area > 0.0);
}

#[test]
fn moving_average_sequential_and_pipelined_agree_on_resources() {
    let seq = Synthesizer::new(moving_average(4, 16))
        .clock_ps(1600.0)
        .latency_bounds(1, 4)
        .run()
        .expect("seq");
    let pipe = Synthesizer::new(moving_average(4, 16))
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(1)
        .run()
        .expect("pipe");
    assert_eq!(pipe.schedule.cycles_per_iteration(), 1);
    assert!(pipe.schedule.cycles_per_iteration() <= seq.schedule.cycles_per_iteration());
    assert!(
        pipe.area >= seq.area * 0.8,
        "pipelining should not magically shrink the datapath"
    );
}

#[test]
fn fir_resources_grow_with_throughput() {
    use hls::tech::ResourceClass;
    let slow = Synthesizer::new(fir_filter(&[3, 5, 7, 11], 16))
        .clock_ps(1600.0)
        .latency_bounds(1, 12)
        .pipeline(4)
        .run()
        .expect("ii4");
    let fast = Synthesizer::new(fir_filter(&[3, 5, 7, 11], 16))
        .clock_ps(1600.0)
        .latency_bounds(1, 12)
        .pipeline(1)
        .run()
        .expect("ii1");
    // II=1 forbids sharing: one multiplier per multiplication, against one
    // shared multiplier at II=4 (narrow 16-bit multipliers are cheap enough
    // that register/mux overheads dominate total area, so the robust claim is
    // about functional units and throughput, not total area).
    let muls = |r: &hls::SynthesisResult| {
        r.schedule
            .desc
            .resources
            .count_of_class(&ResourceClass::Multiplier)
    };
    assert!(muls(&fast) > muls(&slow));
    assert!(fast.schedule.cycles_per_iteration() < slow.schedule.cycles_per_iteration());
}

#[test]
fn faster_clock_costs_more_states() {
    let relaxed = Synthesizer::new(fir_filter(&[1, 2, 3, 4], 16))
        .clock_ps(3200.0)
        .latency_bounds(1, 16)
        .run()
        .expect("3.2ns");
    let tight = Synthesizer::new(fir_filter(&[1, 2, 3, 4], 16))
        .clock_ps(1250.0)
        .latency_bounds(1, 16)
        .run()
        .expect("1.25ns");
    assert!(tight.schedule.latency >= relaxed.schedule.latency);
}
