//! Smoke tests of the experiment drivers (reduced sizes) — the full versions
//! run under `cargo bench`.
use hls::explore::experiments::{idct_exploration, table4_scc_move_ablation};
use hls::explore::{
    figure9_scheduling_time, pareto_front, table1_library, table2_example1_schedule,
};

#[test]
fn table1_has_all_eight_rows() {
    let rows = table1_library();
    assert_eq!(rows.len(), 8);
    assert!(rows.iter().all(|(_, d)| *d >= 0.0));
}

#[test]
fn table2_schedule_is_three_states() {
    assert_eq!(table2_example1_schedule().latency, 3);
}

#[test]
fn figure9_smoke() {
    let pts = figure9_scheduling_time(&[120, 260]);
    assert_eq!(pts.len(), 2);
    assert!(pts.iter().all(|p| p.seconds < 120.0));
}

#[test]
fn figure10_smoke_pipelining_reaches_lowest_delay() {
    let points = idct_exploration(&[1600.0]);
    let best_delay = points
        .iter()
        .map(|p| p.delay_ns)
        .fold(f64::INFINITY, f64::min);
    let best_is_pipelined = points
        .iter()
        .filter(|p| (p.delay_ns - best_delay).abs() < 1e-9)
        .any(|p| p.family.starts_with("Pipelined"));
    assert!(
        best_is_pipelined,
        "the fastest implementation should be pipelined"
    );
    assert!(!pareto_front(&points).is_empty());
}

#[test]
fn table4_smoke() {
    let t4 = table4_scc_move_ablation(3, 140);
    assert!(t4.average_percent >= 0.0);
}
