//! Differential verification of the **bound** netlist: every paper example
//! and a population of random builder programs are scheduled, bound onto
//! shared functional units (`hls-bind`), and executed by the bound
//! cycle-accurate simulator — one value per unit per cycle, operand muxes
//! steered by the FSM — against the reference interpreter, bit for bit.
//!
//! This is the executable proof of the binder's acceptance criterion: shared
//! FUs with steering produce exactly the behaviour of the unshared design,
//! and the bound FU count never exceeds the scheduler's resource set.

use hls::bind::bind;
use hls::designs::{fir_filter, moving_average, paper_example1};
use hls::explore::idct8_design;
use hls::frontend::ast::{Behavior, BinOp, Expr};
use hls::frontend::BehaviorBuilder;
use hls::ir::{CmpKind, LinearBody};
use hls::opt::linearize::prepare_innermost_loop;
use hls::sched::{Scheduler, SchedulerConfig};
use hls::sim::differential::random_check_bound;
use hls::tech::{ClockConstraint, TechLibrary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const VECTORS: usize = 100;

fn linearize(behavior: &Behavior) -> LinearBody {
    let mut cdfg = hls::frontend::elaborate(behavior).expect("elaborates");
    prepare_innermost_loop(&mut cdfg).expect("linearizes")
}

fn lib() -> TechLibrary {
    TechLibrary::artisan_90nm_typical()
}

/// Schedules, binds and differentially verifies the bound netlist.
fn check_bound_design(body: &LinearBody, config: SchedulerConfig, label: &str) {
    let schedule = Scheduler::new(body, &lib(), config)
        .run()
        .unwrap_or_else(|e| panic!("{label}: unschedulable: {e}"));
    let bound = bind(body, &schedule.desc).unwrap_or_else(|e| panic!("{label}: unbindable: {e}"));
    assert!(
        bound.stats.fu_count <= schedule.desc.resources.len(),
        "{label}: binding invented hardware ({} > {})",
        bound.stats.fu_count,
        schedule.desc.resources.len()
    );
    let report = random_check_bound(body, &schedule.desc, &bound, VECTORS, 0xB0B)
        .unwrap_or_else(|e| panic!("{label}: bound differential failed: {e}"));
    assert_eq!(report.iterations as usize, VECTORS, "{label}");
    assert!(report.writes_checked > 0, "{label}: nothing compared");
}

#[test]
fn paper_example1_all_microarchitectures_bound() {
    let body = linearize(&paper_example1());
    let clk = ClockConstraint::from_period_ps(1600.0);
    check_bound_design(&body, SchedulerConfig::sequential(clk, 1, 3), "ex1 seq");
    check_bound_design(&body, SchedulerConfig::pipelined(clk, 2, 6), "ex1 II=2");
    check_bound_design(&body, SchedulerConfig::pipelined(clk, 1, 6), "ex1 II=1");
}

#[test]
fn moving_average_and_fir_bound() {
    let clk = ClockConstraint::from_period_ps(1600.0);
    let avg = linearize(&moving_average(3, 16));
    check_bound_design(&avg, SchedulerConfig::sequential(clk, 1, 4), "avg seq");
    let fir = linearize(&fir_filter(&[3, -5, 7, 9], 16));
    check_bound_design(&fir, SchedulerConfig::sequential(clk, 1, 12), "fir seq");
}

#[test]
fn pipelined_fir_bound_at_every_ii() {
    // the acceptance criterion names the pipelined FIR explicitly: shared-FU
    // execution must hold across the initiation-interval sweep
    let clk = ClockConstraint::from_period_ps(1600.0);
    let fir = linearize(&fir_filter(&[3, -5, 7, 9], 16));
    for ii in [4, 2, 1] {
        check_bound_design(
            &fir,
            SchedulerConfig::pipelined(clk, ii, 16),
            &format!("fir II={ii}"),
        );
    }
}

#[test]
fn idct8_bound_sequential_and_pipelined() {
    let body = idct8_design();
    let clk = ClockConstraint::from_period_ps(2000.0);
    check_bound_design(&body, SchedulerConfig::sequential(clk, 1, 16), "idct seq");
    check_bound_design(&body, SchedulerConfig::pipelined(clk, 8, 32), "idct II=8");
}

/// A random behaviour in the shape the front-end consumes: straight-line
/// assignments over mixed expressions, a predicated region (if-converted to
/// predicates and merge muxes downstream), a port write and a wait.
fn random_behavior(seed: u64) -> Behavior {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = BehaviorBuilder::new(format!("bound{seed}"));
    b.port_in("p0", 16);
    b.port_in("p1", 8);
    b.port_out("out", 16);
    let n_vars = rng.gen_range(1usize..=3);
    let widths = [8u16, 16, 32];
    let vars: Vec<_> = (0..n_vars)
        .map(|i| {
            let w = widths[rng.gen_range(0usize..3)];
            let init = rng.gen_range(0u64..64) as i64 - 32;
            b.var(format!("v{i}"), w, init)
        })
        .collect();
    let leaf = |rng: &mut SmallRng, b: &BehaviorBuilder| -> Expr {
        match rng.gen_range(0u32..5) {
            0 => b.read_port("p0"),
            1 => b.read_port("p1"),
            2 | 3 => Expr::Var(vars[rng.gen_range(0usize..vars.len())]),
            _ => Expr::Const(rng.gen_range(0u64..512) as i64 - 256),
        }
    };
    let node = |rng: &mut SmallRng, a: Expr, c: Expr| -> Expr {
        match rng.gen_range(0u32..10) {
            0 => Expr::add(a, c),
            1 => Expr::sub(a, c),
            2 => Expr::mul(a, c),
            3 => Expr::Binary(BinOp::And, Box::new(a), Box::new(c)),
            4 => Expr::Binary(BinOp::Xor, Box::new(a), Box::new(c)),
            5 => Expr::shl(a, Expr::Const(rng.gen_range(0u64..20) as i64)),
            6 => Expr::shr(a, Expr::Const(rng.gen_range(0u64..20) as i64)),
            7 => Expr::Binary(BinOp::Div, Box::new(a), Box::new(c)),
            8 => Expr::Binary(BinOp::Rem, Box::new(a), Box::new(c)),
            _ => Expr::select(Expr::cmp(CmpKind::Gt, a.clone(), Expr::Const(0)), a, c),
        }
    };
    let mut body = Vec::new();
    for _ in 0..rng.gen_range(2usize..6) {
        let var = vars[rng.gen_range(0usize..vars.len())];
        let l0 = leaf(&mut rng, &b);
        let l1 = leaf(&mut rng, &b);
        let mut e = node(&mut rng, l0, l1);
        if rng.gen_bool(0.5) {
            let l2 = leaf(&mut rng, &b);
            e = node(&mut rng, e, l2);
        }
        body.push(b.assign(var, e));
    }
    if rng.gen_bool(0.7) {
        let v = vars[rng.gen_range(0usize..vars.len())];
        let cond = Expr::cmp(
            CmpKind::Gt,
            Expr::Var(v),
            Expr::Const(rng.gen_range(0u64..16) as i64),
        );
        let l = leaf(&mut rng, &b);
        let r = leaf(&mut rng, &b);
        body.push(b.if_then_else(
            cond,
            vec![b.assign(v, Expr::mul(l, Expr::Const(3)))],
            vec![b.assign(v, Expr::add(r, Expr::Const(1)))],
        ));
    }
    body.push(b.write_port("out", Expr::Var(vars[rng.gen_range(0usize..vars.len())])));
    body.push(b.wait());
    let l = b.do_while(
        "main",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("p0"), Expr::Const(0)),
    );
    b.infinite_loop(vec![l]);
    b.build()
}

#[test]
fn twenty_five_random_programs_bound_bit_exact() {
    let clk = ClockConstraint::from_period_ps(4200.0);
    let mut checked = 0usize;
    for seed in 0..25u64 {
        let body = linearize(&random_behavior(seed));
        let config = if seed % 2 == 0 {
            SchedulerConfig::sequential(clk, 1, 24)
        } else {
            SchedulerConfig::pipelined(clk, 2, 24)
        };
        let Ok(schedule) = Scheduler::new(&body, &lib(), config).run() else {
            continue; // an over-constrained random instance is acceptable
        };
        let bound =
            bind(&body, &schedule.desc).unwrap_or_else(|e| panic!("seed {seed}: unbindable: {e}"));
        assert!(bound.stats.fu_count <= schedule.desc.resources.len());
        random_check_bound(&body, &schedule.desc, &bound, 60, seed)
            .unwrap_or_else(|e| panic!("seed {seed}: bound differential failed: {e}"));
        checked += 1;
    }
    assert!(
        checked >= 20,
        "only {checked}/25 random programs schedulable"
    );
}
