//! Integration tests for the `hls-lint` analyzer: the idct8 acceptance
//! check (the reported critical path must re-derive, cell by cell, from
//! `ChainTiming` primitives) and the rewrite-monotonicity property
//! (`optimize()` never introduces new diagnostics).
use hls::explore::{idct8_design, synthetic_design, DesignClass};
use hls::lint::{analyze, Lint, LintConfig, LintContext};
use hls::netlist::ChainTiming;
use hls::nir::CellKind;
use hls::sched::{Scheduler, SchedulerConfig};
use hls::tech::{ClockConstraint, TechLibrary};
use proptest::prelude::*;

/// Recomputes the critical path's delay step by step from `ChainTiming`
/// primitives, asserting each step's running arrival against the report.
///
/// The rules mirror the analyzer's documented model: sources launch at
/// clock-to-Q (constants at 0), plain cells add their Table 1 delay, a mux
/// charges its tree fan-in only where the tree is consumed by a non-mux
/// step, and the endpoint adds the flip-flop setup.
fn recompute_path(
    m: &hls::nir::NirModule,
    timing: &hls::lint::TimingSummary,
    t: &mut ChainTiming,
) -> f64 {
    let path = &timing.critical_path;
    assert!(!path.is_empty(), "no critical path reported");
    let mut acc = 0.0;
    for (i, step) in path.iter().enumerate() {
        let cell = m.cell(step.cell);
        let next_is_mux = path
            .get(i + 1)
            .map(|n| matches!(m.cell(n.cell).kind, CellKind::Mux { .. }))
            .unwrap_or(false);
        let last = i + 1 == path.len();
        acc += match &cell.kind {
            CellKind::Const(_) => 0.0,
            CellKind::Reg { .. } if i == 0 => t.register_arrival_ps(),
            CellKind::Reg { .. } => {
                assert!(last, "a register mid-path is not combinational");
                t.setup_ps()
            }
            CellKind::Output { .. } => {
                assert!(last, "an output port is always the endpoint");
                t.setup_ps()
            }
            CellKind::Input { .. }
            | CellKind::FsmState
            | CellKind::StageValid { .. }
            | CellKind::FirstIter { .. } => t.register_arrival_ps(),
            CellKind::Mux { .. } => {
                // a path can begin at a mux whose (registered) select wins
                let start = if i == 0 { t.register_arrival_ps() } else { 0.0 };
                let tree = if next_is_mux {
                    0.0
                } else {
                    t.mux_tree_delay_ps(step.fanin, cell.width)
                };
                start + tree
            }
            kind => {
                let widths: Vec<u16> = cell.inputs.iter().map(|&x| m.cell(x).width).collect();
                t.cell_delay_ps(kind, &widths, cell.width)
            }
        };
        assert!(
            (acc - step.arrival_ps).abs() < 0.1,
            "step {i} `{}` ({}): recomputed {acc} vs reported {}",
            step.name,
            step.kind,
            step.arrival_ps
        );
    }
    acc
}

/// The idct8 acceptance check: at the paper-scale 2000 ps clock the shared-FU
/// II=8 netlist meets timing, the reported critical path re-derives from
/// `ChainTiming` within 0.1 ps, and tightening the clock below the path's
/// delay turns the same netlist into a deny-level setup violation.
#[test]
fn idct8_sta_critical_path_matches_hand_computation() {
    let result = hls::Synthesizer::from_body(idct8_design())
        .clock_ps(2000.0)
        .latency_bounds(1, 32)
        .pipeline(8)
        .run()
        .expect("idct8 synthesizes at 2000 ps, II=8");
    let timing = result.lint.timing.as_ref().expect("analysis ran");
    assert!(
        timing.wns_ps > 0.0,
        "positive slack at 2000 ps, got wns {}",
        timing.wns_ps
    );
    assert!(timing.meets_clock());
    assert_eq!(timing.tns_ps, 0.0);

    // The path is named launch-to-capture and its cell-summed delay
    // re-derives from the library's primitives.
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(2000.0);
    let mut t = ChainTiming::new(&lib, clock);
    let total = recompute_path(&result.netlist, timing, &mut t);
    assert!(
        (total - timing.critical_delay_ps()).abs() < 0.1,
        "cell-summed {total} vs endpoint {}",
        timing.critical_delay_ps()
    );
    assert!(timing.critical_path.len() >= 4, "a real multi-cell chain");
    assert!(
        timing.critical_path_names().contains("->"),
        "path renders as a named chain"
    );
    // increments telescope exactly to the endpoint delay
    let summed: f64 = timing.critical_path.iter().map(|s| s.incr_ps).sum();
    assert!((summed - timing.critical_delay_ps()).abs() < 1e-9);

    // Tightened below the critical delay, the same netlist fails with a
    // deny-level setup violation under `deny_timing`.
    let tight = ClockConstraint::from_period_ps(timing.critical_delay_ps() - 50.0);
    let ctx = LintContext::new(&lib, tight)
        .with_binding(&result.binding)
        .with_schedule(&result.schedule.desc);
    let report = analyze(&result.netlist, &ctx, &LintConfig::deny_timing());
    assert!(
        report.has_deny(),
        "tight clock must gate: {}",
        report.render()
    );
    assert!(report.count_of(Lint::SetupViolation) >= 1);
    let violation = report
        .diagnostics
        .iter()
        .find(|d| d.lint == Lint::SetupViolation)
        .expect("violation present");
    assert!(violation.message.contains("ps past the"), "{violation:?}");
}

/// The synthesizer's stored report matches a fresh analysis of the stored
/// netlist in the same context — the gate and the report can't drift apart.
#[test]
fn stored_report_matches_fresh_analysis() {
    let result = hls::Synthesizer::from_body(idct8_design())
        .clock_ps(2000.0)
        .latency_bounds(1, 32)
        .pipeline(8)
        .run()
        .expect("synthesizes");
    let lib = TechLibrary::artisan_90nm_typical();
    let ctx = LintContext::new(&lib, ClockConstraint::from_period_ps(2000.0))
        .with_binding(&result.binding)
        .with_schedule(&result.schedule.desc);
    let fresh = analyze(&result.netlist, &ctx, &LintConfig::default());
    assert_eq!(result.lint, fresh);
    assert_eq!(result.lint.to_json(), fresh.to_json());
}

fn class_strategy() -> impl Strategy<Value = DesignClass> {
    prop_oneof![
        Just(DesignClass::Filter),
        Just(DesignClass::Fft),
        Just(DesignClass::ImageKernel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// `optimize()` never introduces new diagnostics (per-lint counts after
    /// are bounded by the counts before), and the analyzer is deterministic
    /// (two runs yield identical reports and identical JSON).
    #[test]
    fn rewrites_never_introduce_diagnostics(
        class in class_strategy(),
        ops in 40usize..120,
        seed in 0u64..1000,
        pipelined in any::<bool>(),
    ) {
        let body = synthetic_design(class, ops, seed);
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(1800.0);
        let config = if pipelined {
            SchedulerConfig::pipelined(clock, 2, 32)
        } else {
            SchedulerConfig::sequential(clock, 1, 32)
        };
        let Ok(schedule) = Scheduler::new(&body, &lib, config).run() else {
            // an over-constrained random instance is acceptable
            return Ok(());
        };
        let Ok(binding) = hls::bind::bind(&body, &schedule.desc) else {
            return Ok(());
        };
        let Ok(mut netlist) =
            hls::bind::lower(&body, &schedule.desc, &binding, hls::bind::RtlStyle::SharedFu)
        else {
            return Ok(());
        };
        let ctx = LintContext::new(&lib, clock)
            .with_binding(&binding)
            .with_schedule(&schedule.desc);
        let cfg = LintConfig::default();
        let before = analyze(&netlist, &ctx, &cfg);
        prop_assert!(!before.has_deny(), "pre-rewrite netlist denies:\n{}", before.render());

        hls::nir::optimize(&mut netlist);
        let after = analyze(&netlist, &ctx, &cfg);

        // determinism: same module, same context, same report
        let again = analyze(&netlist, &ctx, &cfg);
        prop_assert_eq!(&after, &again);
        prop_assert_eq!(after.to_json(), again.to_json());

        // monotonicity: rewrites only remove or rebalance, so no lint may
        // fire more often than before
        let (nb, na) = (before.counts(), after.counts());
        for (i, lint) in Lint::ALL.iter().enumerate() {
            prop_assert!(
                na[i] <= nb[i],
                "{} rose from {} to {}:\nbefore:\n{}\nafter:\n{}",
                lint.name(), nb[i], na[i], before.render(), after.render()
            );
        }
    }
}
