//! Integration tests for the `hls-lint` analyzer: the idct8 acceptance
//! check (the reported critical path must re-derive, cell by cell, from
//! `ChainTiming` primitives) and the rewrite-monotonicity property
//! (`optimize()` never introduces new diagnostics).
use hls::explore::{idct8_design, synthetic_design, DesignClass};
use hls::lint::{analyze, optimize_timed, Lint, LintConfig, LintContext};
use hls::netlist::ChainTiming;
use hls::nir::CellKind;
use hls::sched::{Scheduler, SchedulerConfig};
use hls::sim::differential;
use hls::tech::{ClockConstraint, TechLibrary};
use proptest::prelude::*;

/// Recomputes the critical path's delay step by step from `ChainTiming`
/// primitives, asserting each step's running arrival against the report.
///
/// The rules mirror the analyzer's documented model: sources launch at
/// clock-to-Q (constants at 0), plain cells add their Table 1 delay, a mux
/// charges its tree fan-in only where the tree is consumed by a non-mux
/// step, and the endpoint adds the flip-flop setup.
fn recompute_path(
    m: &hls::nir::NirModule,
    timing: &hls::lint::TimingSummary,
    t: &mut ChainTiming,
) -> f64 {
    let path = &timing.critical_path;
    assert!(!path.is_empty(), "no critical path reported");
    let mut acc = 0.0;
    for (i, step) in path.iter().enumerate() {
        let cell = m.cell(step.cell);
        let next_is_mux = path
            .get(i + 1)
            .map(|n| matches!(m.cell(n.cell).kind, CellKind::Mux { .. }))
            .unwrap_or(false);
        let last = i + 1 == path.len();
        acc += match &cell.kind {
            CellKind::Const(_) => 0.0,
            CellKind::Reg { .. } if i == 0 => t.register_arrival_ps(),
            CellKind::Reg { .. } => {
                assert!(last, "a register mid-path is not combinational");
                t.setup_ps()
            }
            CellKind::Output { .. } => {
                assert!(last, "an output port is always the endpoint");
                t.setup_ps()
            }
            CellKind::Input { .. }
            | CellKind::FsmState
            | CellKind::StageValid { .. }
            | CellKind::FirstIter { .. } => t.register_arrival_ps(),
            CellKind::Mux { .. } => {
                // a path can begin at a mux whose (registered) select wins
                let start = if i == 0 { t.register_arrival_ps() } else { 0.0 };
                let tree = if next_is_mux {
                    0.0
                } else {
                    t.mux_tree_delay_ps(step.fanin, cell.width)
                };
                start + tree
            }
            kind => {
                let widths: Vec<u16> = cell.inputs.iter().map(|&x| m.cell(x).width).collect();
                t.cell_delay_ps(kind, &widths, cell.width)
            }
        };
        assert!(
            (acc - step.arrival_ps).abs() < 0.1,
            "step {i} `{}` ({}): recomputed {acc} vs reported {}",
            step.name,
            step.kind,
            step.arrival_ps
        );
    }
    acc
}

/// The idct8 acceptance check: at the paper-scale 2000 ps clock the shared-FU
/// II=8 netlist meets timing, the reported critical path re-derives from
/// `ChainTiming` within 0.1 ps, and tightening the clock below the path's
/// delay turns the same netlist into a deny-level setup violation.
#[test]
fn idct8_sta_critical_path_matches_hand_computation() {
    let result = hls::Synthesizer::from_body(idct8_design())
        .clock_ps(2000.0)
        .latency_bounds(1, 32)
        .pipeline(8)
        .run()
        .expect("idct8 synthesizes at 2000 ps, II=8");
    let timing = result.lint.timing.as_ref().expect("analysis ran");
    assert!(
        timing.wns_ps > 0.0,
        "positive slack at 2000 ps, got wns {}",
        timing.wns_ps
    );
    assert!(timing.meets_clock());
    assert_eq!(timing.tns_ps, 0.0);

    // The path is named launch-to-capture and its cell-summed delay
    // re-derives from the library's primitives.
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(2000.0);
    let mut t = ChainTiming::new(&lib, clock);
    let total = recompute_path(&result.netlist, timing, &mut t);
    assert!(
        (total - timing.critical_delay_ps()).abs() < 0.1,
        "cell-summed {total} vs endpoint {}",
        timing.critical_delay_ps()
    );
    assert!(timing.critical_path.len() >= 4, "a real multi-cell chain");
    assert!(
        timing.critical_path_names().contains("->"),
        "path renders as a named chain"
    );
    // increments telescope exactly to the endpoint delay
    let summed: f64 = timing.critical_path.iter().map(|s| s.incr_ps).sum();
    assert!((summed - timing.critical_delay_ps()).abs() < 1e-9);

    // Tightened below the critical delay, the same netlist fails with a
    // deny-level setup violation under `deny_timing`.
    let tight = ClockConstraint::from_period_ps(timing.critical_delay_ps() - 50.0);
    let ctx = LintContext::new(&lib, tight)
        .with_binding(&result.binding)
        .with_schedule(&result.schedule.desc);
    let report = analyze(&result.netlist, &ctx, &LintConfig::deny_timing());
    assert!(
        report.has_deny(),
        "tight clock must gate: {}",
        report.render()
    );
    assert!(report.count_of(Lint::SetupViolation) >= 1);
    let violation = report
        .diagnostics
        .iter()
        .find(|d| d.lint == Lint::SetupViolation)
        .expect("violation present");
    assert!(violation.message.contains("ps past the"), "{violation:?}");
}

/// The timed-rewrite acceptance check: idct8 II=8 is scheduled at the
/// paper's 2000 ps clock (critical path 1890 ps). At a 1700 ps clock the
/// stock netlist is a deny-level setup violation — PR 7's behaviour — but
/// `optimize_timed` closes it: the endpoint shifter `w_38_shr` shifts by
/// the constant 11, so strength reduction rewires it as slice/resize
/// wiring, dropping the path to ~1630 ps and the verdict to a pass with
/// positive slack. Observable behaviour is bit-exact before and after, and
/// at the stock clock (all slacks positive) the stage provably does not
/// touch the netlist.
#[test]
fn idct8_timed_rewrites_turn_a_tight_clock_deny_into_a_pass() {
    let result = hls::Synthesizer::from_body(idct8_design())
        .clock_ps(2000.0)
        .latency_bounds(1, 32)
        .pipeline(8)
        .verify(40)
        .run()
        .expect("idct8 synthesizes at 2000 ps, II=8");
    let timing = result.lint.timing.as_ref().expect("analysis ran");
    let lib = TechLibrary::artisan_90nm_typical();
    let tight = ClockConstraint::from_period_ps(1700.0);
    assert!(
        tight.period_ps() < timing.critical_delay_ps(),
        "the tightened clock must sit below the stock critical path"
    );

    // The stock netlist denies at the tightened clock (the PR 7 gate)…
    let ctx = LintContext::new(&lib, tight)
        .with_binding(&result.binding)
        .with_schedule(&result.schedule.desc);
    let deny = analyze(&result.netlist, &ctx, &LintConfig::deny_timing());
    assert!(deny.has_deny(), "stock netlist must fail 1700 ps");
    assert!(deny.count_of(Lint::SetupViolation) >= 1);

    // …and is bit-exact against the reference interpreter.
    differential::random_check_nir(&result.body, &result.netlist, 60, 0xACCE)
        .expect("stock netlist bit-exact");

    // The timed loop turns the deny into a pass with positive slack.
    let mut rewritten = result.netlist.clone();
    let report = optimize_timed(&mut rewritten, &lib, tight);
    assert!(report.changed());
    assert!(report.before.wns_ps < 0.0, "{}", report.before.wns_ps);
    assert!(report.after.wns_ps > 0.0, "{}", report.after.wns_ps);
    assert_eq!(
        report.reduced_shifts, 1,
        "the endpoint `w_38_shr >> 11` becomes slice/resize wiring"
    );
    assert!(
        report.after.critical_delay_ps() <= timing.critical_delay_ps() - 200.0,
        "a 32-bit shifter (260 ps) left the path: {} -> {}",
        timing.critical_delay_ps(),
        report.after.critical_delay_ps()
    );
    hls::nir::validate(&rewritten).expect("rewritten netlist validates");
    differential::random_check_nir(&result.body, &rewritten, 60, 0xACCE)
        .expect("rewritten netlist bit-exact");
    let pass = analyze(&rewritten, &ctx, &LintConfig::deny_timing());
    assert!(!pass.has_deny(), "1700 ps now passes:\n{}", pass.render());

    // Zero churn when timing is met: the synthesizer's own stage saw the
    // 2000 ps clock satisfied and left the netlist alone, and a direct run
    // at the stock clock returns the module byte-identical.
    assert_eq!(result.timed_rewrites.rounds, 0);
    assert_eq!(result.timed_rewrites.before, result.timed_rewrites.after);
    let mut untouched = result.netlist.clone();
    let stock = optimize_timed(
        &mut untouched,
        &lib,
        ClockConstraint::from_period_ps(2000.0),
    );
    assert!(!stock.changed());
    assert_eq!(
        untouched, result.netlist,
        "stats identical, cells identical"
    );
    assert_eq!(untouched.stats(), result.netlist.stats());
}

/// The synthesizer's stored report matches a fresh analysis of the stored
/// netlist in the same context — the gate and the report can't drift apart.
#[test]
fn stored_report_matches_fresh_analysis() {
    let result = hls::Synthesizer::from_body(idct8_design())
        .clock_ps(2000.0)
        .latency_bounds(1, 32)
        .pipeline(8)
        .run()
        .expect("synthesizes");
    let lib = TechLibrary::artisan_90nm_typical();
    let ctx = LintContext::new(&lib, ClockConstraint::from_period_ps(2000.0))
        .with_binding(&result.binding)
        .with_schedule(&result.schedule.desc);
    let fresh = analyze(&result.netlist, &ctx, &LintConfig::default());
    assert_eq!(result.lint, fresh);
    assert_eq!(result.lint.to_json(), fresh.to_json());
}

fn class_strategy() -> impl Strategy<Value = DesignClass> {
    prop_oneof![
        Just(DesignClass::Filter),
        Just(DesignClass::Fft),
        Just(DesignClass::ImageKernel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// `optimize()` never introduces new diagnostics (per-lint counts after
    /// are bounded by the counts before), and the analyzer is deterministic
    /// (two runs yield identical reports and identical JSON).
    #[test]
    fn rewrites_never_introduce_diagnostics(
        class in class_strategy(),
        ops in 40usize..120,
        seed in 0u64..1000,
        pipelined in any::<bool>(),
    ) {
        let body = synthetic_design(class, ops, seed);
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(1800.0);
        let config = if pipelined {
            SchedulerConfig::pipelined(clock, 2, 32)
        } else {
            SchedulerConfig::sequential(clock, 1, 32)
        };
        let Ok(schedule) = Scheduler::new(&body, &lib, config).run() else {
            // an over-constrained random instance is acceptable
            return Ok(());
        };
        let Ok(binding) = hls::bind::bind(&body, &schedule.desc) else {
            return Ok(());
        };
        let Ok(mut netlist) =
            hls::bind::lower(&body, &schedule.desc, &binding, hls::bind::RtlStyle::SharedFu)
        else {
            return Ok(());
        };
        let ctx = LintContext::new(&lib, clock)
            .with_binding(&binding)
            .with_schedule(&schedule.desc);
        let cfg = LintConfig::default();
        let before = analyze(&netlist, &ctx, &cfg);
        prop_assert!(!before.has_deny(), "pre-rewrite netlist denies:\n{}", before.render());

        hls::nir::optimize(&mut netlist);
        let after = analyze(&netlist, &ctx, &cfg);

        // determinism: same module, same context, same report
        let again = analyze(&netlist, &ctx, &cfg);
        prop_assert_eq!(&after, &again);
        prop_assert_eq!(after.to_json(), again.to_json());

        // monotonicity: rewrites only remove or rebalance, so no lint may
        // fire more often than before
        let (nb, na) = (before.counts(), after.counts());
        for (i, lint) in Lint::ALL.iter().enumerate() {
            prop_assert!(
                na[i] <= nb[i],
                "{} rose from {} to {}:\nbefore:\n{}\nafter:\n{}",
                lint.name(), nb[i], na[i], before.render(), after.render()
            );
        }
    }

    /// `optimize_timed()` never worsens WNS, is deterministic, stays
    /// bit-exact against the reference interpreter, and does not touch
    /// netlists that already meet the clock — across sequential/pipelined
    /// schedules and SharedFu/PerOp lowering styles.
    #[test]
    fn optimize_timed_is_monotone_deterministic_and_bit_exact(
        class in class_strategy(),
        ops in 40usize..100,
        seed in 0u64..1000,
        pipelined in any::<bool>(),
        shared in any::<bool>(),
    ) {
        let body = synthetic_design(class, ops, seed);
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(1800.0);
        let config = if pipelined {
            SchedulerConfig::pipelined(clock, 2, 32)
        } else {
            SchedulerConfig::sequential(clock, 1, 32)
        };
        let Ok(schedule) = Scheduler::new(&body, &lib, config).run() else {
            return Ok(());
        };
        let Ok(binding) = hls::bind::bind(&body, &schedule.desc) else {
            return Ok(());
        };
        let style = if shared {
            hls::bind::RtlStyle::SharedFu
        } else {
            hls::bind::RtlStyle::PerOp
        };
        let Ok(mut netlist) = hls::bind::lower(&body, &schedule.desc, &binding, style) else {
            return Ok(());
        };
        hls::nir::optimize(&mut netlist);

        // A clock loose enough that every slack is positive: zero churn.
        let loose = ClockConstraint::from_period_ps(20_000.0);
        let mut clean = netlist.clone();
        let untouched = optimize_timed(&mut clean, &lib, loose);
        prop_assert!(!untouched.changed());
        prop_assert_eq!(&clean, &netlist);

        // A clock tight enough that most instances fail somewhere: the
        // loop must never lose slack, whatever it finds.
        let tight = ClockConstraint::from_period_ps(900.0);
        let mut a = netlist.clone();
        let ra = optimize_timed(&mut a, &lib, tight);
        prop_assert!(
            ra.after.wns_ps >= ra.before.wns_ps,
            "WNS worsened: {} -> {}", ra.before.wns_ps, ra.after.wns_ps
        );
        hls::nir::validate(&a)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: post-timed: {e}")))?;

        // determinism: a second run from the same input is identical
        let mut b = netlist.clone();
        let rb = optimize_timed(&mut b, &lib, tight);
        prop_assert_eq!(&ra, &rb);
        prop_assert_eq!(&a, &b);

        // bit-exactness whenever anything was rewritten
        if ra.changed() {
            differential::random_check_nir(&body, &a, 30, seed)
                .map_err(|e| TestCaseError::fail(format!("seed {seed}: differential: {e}")))?;
        }
    }
}
