// do_while: emitted by rpp-hls from the structural netlist
// 34 cells, 3 folded state(s), 1 pipeline stage(s)
module do_while (
  input wire clk,
  input wire rst,
  input wire signed [31:0] mask,
  input wire signed [31:0] chrome,
  input wire signed [31:0] scale,
  input wire signed [31:0] th,
  output reg signed [31:0] pixel
);

  // controller: 3 folded state(s), 1 stage(s)
  reg [7:0] state;
  reg [0:0] first_iter;
  always @(posedge clk) begin
    if (rst) begin
      state <= 8'd0;
      first_iter <= 1'd1;
    end else begin
      state <= (state == 8'd2) ? 8'd0 : state + 8'd1;
      if (state == 8'd2) first_iter <= first_iter << 1; // track iteration 0
    end
  end

  // combinational cells
  wire signed [0:0] n2;
  wire signed [0:0] w_8_gt;
  wire signed [0:0] fu_3_mux21_in0;
  wire signed [0:0] n9;
  wire signed [31:0] n12;
  wire signed [31:0] fu_2_mul1_in0;
  wire signed [31:0] n17;
  wire signed [31:0] fu_2_mul1_in1;
  wire signed [31:0] w_5_mul;
  wire signed [31:0] fu_3_mux21_in1;
  wire signed [31:0] fu_3_mux21_in2;
  wire signed [0:0] n22;
  wire signed [31:0] n23;
  wire signed [31:0] w_1_aver_loop_mux;
  wire signed [31:0] w_11_aver_mux;
  wire signed [31:0] fu_3_mux21;
  wire signed [31:0] w_6_add;
  wire signed [0:0] n31;
  assign n2 = state == 8'sd0;
  assign w_8_gt = v_6_add > v_7_th_read;
  assign fu_3_mux21_in0 = n2 ? first_iter[0] : w_8_gt;
  assign n9 = state == 8'sd1;
  assign n12 = n9 ? v_6_add : v_11_aver_mux;
  assign fu_2_mul1_in0 = n2 ? mask : n12;
  assign n17 = n9 ? v_9_scale_read : v_2_mask_read;
  assign fu_2_mul1_in1 = n2 ? chrome : n17;
  assign w_5_mul = fu_2_mul1_in0 * fu_2_mul1_in1;
  assign fu_3_mux21_in1 = n2 ? 32'sd0 : w_5_mul;
  assign fu_3_mux21_in2 = n2 ? v_11_aver_mux : v_6_add;
  assign n22 = fu_3_mux21_in1;
  assign n23 = n22;
  assign w_1_aver_loop_mux = fu_3_mux21_in0 ? n23 : fu_3_mux21_in2;
  assign w_11_aver_mux = fu_3_mux21_in0 ? fu_3_mux21_in1 : fu_3_mux21_in2;
  assign fu_3_mux21 = n2 ? w_1_aver_loop_mux : w_11_aver_mux;
  assign w_6_add = fu_3_mux21 + w_5_mul;
  assign n31 = state == 8'sd2;

  // datapath registers
  reg signed [31:0] v_6_add;
  reg signed [31:0] v_7_th_read;
  reg signed [31:0] v_11_aver_mux;
  reg signed [31:0] v_9_scale_read;
  reg signed [31:0] v_2_mask_read;

  always @(posedge clk) begin
    if (rst) begin
      v_6_add <= 32'sd0;
      v_7_th_read <= 32'sd0;
      v_11_aver_mux <= 32'sd0;
      v_9_scale_read <= 32'sd0;
      v_2_mask_read <= 32'sd0;
      pixel <= 32'sd0;
    end else begin
      if (n2) v_6_add <= w_6_add;
      if (n2) v_7_th_read <= th;
      if (n9) v_11_aver_mux <= fu_3_mux21;
      if (n2) v_9_scale_read <= scale;
      if (n2) v_2_mask_read <= mask;
      if (n31) pixel <= w_5_mul;
    end
  end
endmodule
