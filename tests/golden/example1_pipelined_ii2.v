// do_while: emitted by rpp-hls from the structural netlist
// 36 cells, 2 folded state(s), 2 pipeline stage(s)
module do_while (
  input wire clk,
  input wire rst,
  input wire signed [31:0] mask,
  input wire signed [31:0] chrome,
  input wire signed [31:0] scale,
  input wire signed [31:0] th,
  output reg signed [31:0] pixel
);

  // controller: 2 folded state(s), 2 stage(s)
  reg [7:0] state;
  reg [1:0] stage_valid;
  reg [1:0] first_iter;
  always @(posedge clk) begin
    if (rst) begin
      state <= 8'd0;
      stage_valid <= 2'd1;
      first_iter <= 2'd1;
    end else begin
      state <= (state == 8'd1) ? 8'd0 : state + 8'd1;
      if (state == 8'd1) stage_valid <= {stage_valid[0:0], 1'b1}; // pipeline fill
      if (state == 8'd1) first_iter <= first_iter << 1; // track iteration 0
    end
  end

  // combinational cells
  wire signed [0:0] n2;
  wire signed [0:0] n4;
  wire signed [0:0] w_8_gt;
  wire signed [0:0] fu_4_mux21_in0;
  wire signed [31:0] fu_2_mul1_in0;
  wire signed [31:0] fu_2_mul1_in1;
  wire signed [31:0] w_5_mul;
  wire signed [31:0] fu_4_mux21_in1;
  wire signed [31:0] fu_4_mux21_in2;
  wire signed [0:0] n19;
  wire signed [31:0] n20;
  wire signed [31:0] w_1_aver_loop_mux;
  wire signed [31:0] w_11_aver_mux;
  wire signed [31:0] fu_4_mux21;
  wire signed [31:0] w_6_add;
  wire signed [31:0] w_12_mul;
  wire signed [0:0] n30;
  wire signed [0:0] n33;
  wire signed [0:0] n34;
  assign n2 = state == 8'sd0;
  assign n4 = n2 & stage_valid[0];
  assign w_8_gt = v_6_add > v_7_th_read;
  assign fu_4_mux21_in0 = n4 ? first_iter[0] : w_8_gt;
  assign fu_2_mul1_in0 = n4 ? mask : v_6_add;
  assign fu_2_mul1_in1 = n4 ? chrome : v_9_scale_read;
  assign w_5_mul = fu_2_mul1_in0 * fu_2_mul1_in1;
  assign fu_4_mux21_in1 = n4 ? 32'sd0 : w_5_mul;
  assign fu_4_mux21_in2 = n4 ? v_11_aver_mux : v_6_add;
  assign n19 = fu_4_mux21_in1;
  assign n20 = n19;
  assign w_1_aver_loop_mux = fu_4_mux21_in0 ? n20 : fu_4_mux21_in2;
  assign w_11_aver_mux = fu_4_mux21_in0 ? fu_4_mux21_in1 : fu_4_mux21_in2;
  assign fu_4_mux21 = n4 ? w_1_aver_loop_mux : w_11_aver_mux;
  assign w_6_add = fu_4_mux21 + w_5_mul;
  assign w_12_mul = v_11_aver_mux * v_2_mask_read;
  assign n30 = n2 & stage_valid[1];
  assign n33 = state == 8'sd1;
  assign n34 = n33 & stage_valid[0];

  // datapath registers
  reg signed [31:0] v_6_add;
  reg signed [31:0] v_7_th_read;
  reg signed [31:0] v_9_scale_read;
  reg signed [31:0] v_11_aver_mux;
  reg signed [31:0] v_2_mask_read;

  always @(posedge clk) begin
    if (rst) begin
      v_6_add <= 32'sd0;
      v_7_th_read <= 32'sd0;
      v_9_scale_read <= 32'sd0;
      v_11_aver_mux <= 32'sd0;
      v_2_mask_read <= 32'sd0;
      pixel <= 32'sd0;
    end else begin
      if (n4) v_6_add <= w_6_add;
      if (n4) v_7_th_read <= th;
      if (n4) v_9_scale_read <= scale;
      if (n34) v_11_aver_mux <= fu_4_mux21;
      if (n4) v_2_mask_read <= mask;
      if (n30) pixel <= w_12_mul;
    end
  end
endmodule
