//! Golden-snapshot tests for the RTL emitter on the paper's Example 1.
//!
//! The emitted text for the sequential (Table 2) and II=2 pipelined
//! (Example 2) schedules is pinned byte-for-byte under `tests/golden/`.
//! An emitter refactor that changes the output now diffs textually instead
//! of failing silently; run with `UPDATE_GOLDEN=1` to bless intentional
//! changes after reviewing the diff.

use hls::designs::paper_example1;
use hls::Synthesizer;
use std::path::Path;

fn compare_or_bless(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    if expected != actual {
        let diff: Vec<String> = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .filter(|(_, (e, a))| e != a)
            .take(12)
            .map(|(i, (e, a))| format!("line {}:\n  golden: {e}\n  actual: {a}", i + 1))
            .collect();
        panic!(
            "RTL for {name} diverged from the golden snapshot \
             ({} vs {} lines).\n{}\nIf the change is intentional, re-bless with \
             `UPDATE_GOLDEN=1 cargo test --test golden_rtl`.",
            expected.lines().count(),
            actual.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn example1_sequential_rtl_matches_golden() {
    let result = Synthesizer::new(paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .run()
        .expect("example 1 schedules sequentially");
    compare_or_bless("example1_sequential.v", &result.rtl);
}

#[test]
fn example1_pipelined_ii2_rtl_matches_golden() {
    let result = Synthesizer::new(paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(2)
        .run()
        .expect("example 1 pipelines at II=2");
    compare_or_bless("example1_pipelined_ii2.v", &result.rtl);
}

#[test]
fn example1_shared_fu_rtl_has_one_multiplier_and_three_way_muxes() {
    // Example 1 with the minimum resource set: ONE multiplier runs all
    // three multiplications, so the text must contain exactly one `*`
    // operator, steered through 3-input operand muxes — and the counts in
    // the emitted `// fu` headers must agree with the binder's statistics.
    let result = Synthesizer::new(paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .run()
        .expect("example 1 schedules sequentially");
    let rtl = &result.rtl;
    assert_eq!(rtl.matches(" * ").count(), 1, "one physical multiplier");
    assert!(
        rtl.contains("// fu mul1 (mul_32x32): ops=3 mux_in0=3 mux_in1=3"),
        "{rtl}"
    );
    // both multiplier ports carry a 3-arm state-steered priority chain
    assert!(
        rtl.contains("assign fu_2_mul1_in0 = (state == 8'd0) ?"),
        "{rtl}"
    );
    // header counts match the binder's counted statistics
    let stats = result.binding_stats();
    assert_eq!(
        rtl.matches("// fu ").count(),
        stats.fu_count,
        "one header per bound unit"
    );
    let mul_fu = result
        .binding
        .fus
        .iter()
        .find(|f| f.name == "mul1")
        .expect("mul1 bound");
    assert_eq!(mul_fu.ops.len(), 3);
    let mul_mux_inputs: usize = result
        .binding
        .muxes
        .iter()
        .filter(|m| m.fu == mul_fu.instance && m.is_real())
        .map(|m| m.sources.len())
        .sum();
    assert_eq!(mul_mux_inputs, 6, "two 3-input operand muxes on mul1");
}
