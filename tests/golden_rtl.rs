//! Golden-snapshot tests for the RTL emitter on the paper's Example 1.
//!
//! The emitted text for the sequential (Table 2) and II=2 pipelined
//! (Example 2) schedules is pinned byte-for-byte under `tests/golden/`.
//! An emitter refactor that changes the output now diffs textually instead
//! of failing silently; run with `UPDATE_GOLDEN=1` to bless intentional
//! changes after reviewing the diff.

use hls::designs::paper_example1;
use hls::Synthesizer;
use std::path::Path;

fn compare_or_bless(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    if expected != actual {
        let diff: Vec<String> = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .filter(|(_, (e, a))| e != a)
            .take(12)
            .map(|(i, (e, a))| format!("line {}:\n  golden: {e}\n  actual: {a}", i + 1))
            .collect();
        panic!(
            "RTL for {name} diverged from the golden snapshot \
             ({} vs {} lines).\n{}\nIf the change is intentional, re-bless with \
             `UPDATE_GOLDEN=1 cargo test --test golden_rtl`.",
            expected.lines().count(),
            actual.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn example1_sequential_rtl_matches_golden() {
    let result = Synthesizer::new(paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .run()
        .expect("example 1 schedules sequentially");
    compare_or_bless("example1_sequential.v", &result.rtl);
}

#[test]
fn example1_pipelined_ii2_rtl_matches_golden() {
    let result = Synthesizer::new(paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(2)
        .run()
        .expect("example 1 pipelines at II=2");
    compare_or_bless("example1_pipelined_ii2.v", &result.rtl);
}

#[test]
fn example1_shared_fu_rtl_has_one_multiplier_and_three_way_muxes() {
    // Example 1 with the minimum resource set: ONE multiplier runs all
    // three multiplications. The sharing is asserted on the netlist object
    // the RTL is printed from — no grepping of emitted comments.
    let result = Synthesizer::new(paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .verify(50)
        .run()
        .expect("example 1 schedules sequentially");
    assert_eq!(
        result.rtl.matches(" * ").count(),
        1,
        "one physical multiplier in the text"
    );
    let nstats = result.netlist_stats();
    assert_eq!(
        nstats.count_bin(hls::nir::BinKind::Mul),
        1,
        "one multiplier cell: {nstats:?}"
    );
    // the shared multiplier's ports carry steering muxes; three ops on one
    // unit need at least two 3-arm chains (2 muxes each)
    assert!(nstats.muxes() >= 4, "{nstats:?}");
    assert!(nstats.regs > 0 && nstats.reg_bits > 0, "{nstats:?}");
    // the 3-arm chains are already depth-optimal, so rewrites must not
    // deepen them
    let report = &result.netlist_rewrites;
    assert!(
        report.mux_depth_after <= report.mux_depth_before,
        "{report:?}"
    );
    // the shared-unit names survive into the netlist and the printed text
    assert!(
        result
            .netlist
            .iter_cells()
            .any(|(_, c)| c.name.as_deref().is_some_and(|n| n.contains("mul1"))),
        "mul1 steering nets are named after the unit"
    );
    // netlist cell counts agree with the binder's counted statistics
    let stats = result.binding_stats();
    let mul_fu = result
        .binding
        .fus
        .iter()
        .find(|f| f.name == "mul1")
        .expect("mul1 bound");
    assert_eq!(mul_fu.ops.len(), 3);
    let mul_mux_inputs: usize = result
        .binding
        .muxes
        .iter()
        .filter(|m| m.fu == mul_fu.instance && m.is_real())
        .map(|m| m.sources.len())
        .sum();
    assert_eq!(mul_mux_inputs, 6, "two 3-input operand muxes on mul1");
    assert!(stats.shared_fu_count >= 1);
}

#[test]
fn deep_sharing_gets_its_steering_chains_rebalanced() {
    // The 8-point IDCT shares units across many states, producing long
    // priority-mux spines; the rewrite pipeline must rebuild them as
    // balanced trees (shallower) without changing observable behaviour
    // (the run is differentially verified at the netlist level).
    let result = Synthesizer::from_body(hls::explore::idct8_design())
        .clock_ps(2000.0)
        .latency_bounds(1, 16)
        .verify(30)
        .run()
        .expect("idct8 synthesizes and verifies");
    let report = &result.netlist_rewrites;
    assert!(report.rebalanced > 0, "{report:?}");
    assert!(
        report.mux_depth_after < report.mux_depth_before,
        "rebalancing must reduce mux depth: {report:?}"
    );
    assert!(result.verification.is_some());
}
