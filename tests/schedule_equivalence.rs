//! Schedule-equivalence regression suite for the incremental scheduler.
//!
//! `Scheduler::run` re-passes incrementally (persisted pass state, resume
//! from the invalidated cone); `Scheduler::run_reference` retains the
//! original schedule-everything-every-pass driver over the verbatim
//! pre-arena `schedule_pass_reference`. The two must be **bit-identical** —
//! same latency, same per-op state and binding, same resource set, same pass
//! count, same action sequence, same worst slack — on every example and
//! paper design and on a population of random builder programs; scheduled
//! designs additionally run through `Synthesizer::verify`, executing the
//! schedule cycle-accurately against the reference interpreter.

use hls::explore::{idct8_design, synthetic_design, DesignClass};
use hls::frontend::ast::{Behavior, BinOp, Expr};
use hls::frontend::BehaviorBuilder;
use hls::ir::{CmpKind, LinearBody};
use hls::opt::linearize::prepare_innermost_loop;
use hls::sched::{SchedError, Schedule, Scheduler, SchedulerConfig};
use hls::tech::{ClockConstraint, TechLibrary};
use hls::{designs, Synthesizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn assert_equal_schedules(label: &str, incremental: &Schedule, reference: &Schedule) {
    assert_eq!(
        incremental.latency, reference.latency,
        "{label}: latency differs"
    );
    assert_eq!(
        incremental.passes, reference.passes,
        "{label}: pass count differs"
    );
    assert_eq!(
        incremental.actions, reference.actions,
        "{label}: relaxation actions differ"
    );
    assert_eq!(
        incremental.min_slack_ps.to_bits(),
        reference.min_slack_ps.to_bits(),
        "{label}: min slack differs ({} vs {})",
        incremental.min_slack_ps,
        reference.min_slack_ps
    );
    assert_eq!(
        incremental.desc.num_states, reference.desc.num_states,
        "{label}: num_states differs"
    );
    assert_eq!(
        incremental.desc.ii, reference.desc.ii,
        "{label}: II differs"
    );
    assert_eq!(
        incremental.desc.resources, reference.desc.resources,
        "{label}: resource sets differ"
    );
    assert_eq!(
        incremental.desc.ops, reference.desc.ops,
        "{label}: per-op states/bindings differ"
    );
}

/// Runs both drivers on one (body, config) and asserts identical outcomes —
/// including identical failures for over-constrained specs.
fn check(label: &str, body: &LinearBody, lib: &TechLibrary, config: SchedulerConfig) -> bool {
    let incremental = Scheduler::new(body, lib, config.clone()).run();
    let reference = Scheduler::new(body, lib, config).run_reference();
    match (incremental, reference) {
        (Ok(a), Ok(b)) => {
            assert_equal_schedules(label, &a, &b);
            true
        }
        (
            Err(a @ (SchedError::Overconstrained { .. } | SchedError::BudgetExhausted { .. })),
            Err(b @ (SchedError::Overconstrained { .. } | SchedError::BudgetExhausted { .. })),
        ) => {
            assert_eq!(a, b, "{label}: failures differ");
            false
        }
        (a, b) => panic!(
            "{label}: drivers disagree on success: incremental={:?} reference={:?}",
            a.map(|s| s.latency),
            b.map(|s| s.latency)
        ),
    }
}

fn configs_for(clock_ps: f64, max_latency: u32) -> Vec<(String, SchedulerConfig)> {
    let clock = ClockConstraint::from_period_ps(clock_ps);
    vec![
        (
            "seq".into(),
            SchedulerConfig::sequential(clock, 1, max_latency),
        ),
        (
            "pipe-ii2".into(),
            SchedulerConfig::pipelined(clock, 2, max_latency),
        ),
        (
            "pipe-ii1".into(),
            SchedulerConfig::pipelined(clock, 1, max_latency),
        ),
    ]
}

#[test]
fn paper_example1_is_equivalent_in_all_microarchitectures() {
    let mut cdfg = designs::paper_example1_cdfg().expect("elab");
    let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
    let lib = TechLibrary::artisan_90nm_typical();
    for (name, config) in configs_for(1600.0, 6) {
        check(&format!("example1/{name}"), &body, &lib, config);
    }
    // the deliberately over-constrained case must fail identically too
    let mut tight = SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 1);
    tight.allow_add_resources = false;
    check("example1/overconstrained", &body, &lib, tight);
}

#[test]
fn example_designs_are_equivalent() {
    let lib = TechLibrary::artisan_90nm_typical();
    let mut scheduled = 0;
    for (name, behavior) in [
        ("moving_average", designs::moving_average(3, 16)),
        ("fir4", designs::fir_filter(&[3, -5, 7, 9], 16)),
    ] {
        let mut cdfg = hls::frontend::elaborate(&behavior).expect("elab");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        for (cname, config) in configs_for(1600.0, 12) {
            if check(&format!("{name}/{cname}"), &body, &lib, config) {
                scheduled += 1;
            }
        }
    }
    assert!(scheduled >= 4, "most example configs must schedule");
}

#[test]
fn idct_and_synthetic_designs_are_equivalent() {
    let lib = TechLibrary::artisan_90nm_typical();
    let idct = idct8_design();
    for (cname, config) in configs_for(2000.0, 16) {
        check(&format!("idct8/{cname}"), &idct, &lib, config);
    }
    let mut scheduled = 0;
    for (i, class) in DesignClass::all().into_iter().enumerate() {
        for &size in &[120usize, 260] {
            let body = synthetic_design(class, size, 7 + i as u64);
            let clock = ClockConstraint::from_period_ps(1900.0);
            let mut seq = SchedulerConfig::sequential(clock, 1, 24);
            seq.max_passes = 128;
            let mut pipe = SchedulerConfig::pipelined(clock, 2, 24);
            pipe.max_passes = 128;
            if check(&format!("{class:?}/{size}/seq"), &body, &lib, seq) {
                scheduled += 1;
            }
            if check(&format!("{class:?}/{size}/pipe"), &body, &lib, pipe) {
                scheduled += 1;
            }
        }
    }
    assert!(scheduled >= 4, "several synthetic configs must schedule");
}

/// Compact random-behaviour generator (the `prop_differential` shape:
/// arithmetic/logic/shift/div expressions, a predicated region, a port
/// write, loop-carried state through the variables).
fn random_behavior(seed: u64) -> Behavior {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = BehaviorBuilder::new(format!("eq{seed}"));
    b.port_in("p0", 16);
    b.port_in("p1", 8);
    b.port_out("out", 16);
    let n_vars = rng.gen_range(1usize..=3);
    let widths = [8u16, 16, 32];
    let vars: Vec<_> = (0..n_vars)
        .map(|i| {
            let w = widths[rng.gen_range(0usize..3)];
            let init = rng.gen_range(0u64..64) as i64 - 32;
            b.var(format!("v{i}"), w, init)
        })
        .collect();
    let leaf = |rng: &mut SmallRng, b: &BehaviorBuilder| -> Expr {
        match rng.gen_range(0u32..5) {
            0 => b.read_port("p0"),
            1 => b.read_port("p1"),
            2 | 3 => Expr::Var(vars[rng.gen_range(0usize..vars.len())]),
            _ => Expr::Const(rng.gen_range(0u64..512) as i64 - 256),
        }
    };
    let node = |rng: &mut SmallRng, a: Expr, c: Expr| -> Expr {
        match rng.gen_range(0u32..10) {
            0 => Expr::add(a, c),
            1 => Expr::sub(a, c),
            2 => Expr::mul(a, c),
            3 => Expr::Binary(BinOp::And, Box::new(a), Box::new(c)),
            4 => Expr::Binary(BinOp::Xor, Box::new(a), Box::new(c)),
            5 => Expr::shl(a, Expr::Const(rng.gen_range(0u64..20) as i64)),
            6 => Expr::shr(a, Expr::Const(rng.gen_range(0u64..20) as i64)),
            7 => Expr::Binary(BinOp::Div, Box::new(a), Box::new(c)),
            8 => Expr::Binary(BinOp::Rem, Box::new(a), Box::new(c)),
            _ => Expr::select(Expr::cmp(CmpKind::Gt, a.clone(), Expr::Const(0)), a, c),
        }
    };
    let mut body = Vec::new();
    for _ in 0..rng.gen_range(2usize..6) {
        let var = vars[rng.gen_range(0usize..vars.len())];
        let l0 = leaf(&mut rng, &b);
        let l1 = leaf(&mut rng, &b);
        let mut e = node(&mut rng, l0, l1);
        if rng.gen_bool(0.5) {
            let l2 = leaf(&mut rng, &b);
            e = node(&mut rng, e, l2);
        }
        body.push(b.assign(var, e));
    }
    if rng.gen_bool(0.7) {
        let v = vars[rng.gen_range(0usize..vars.len())];
        let cond = Expr::cmp(
            CmpKind::Gt,
            Expr::Var(v),
            Expr::Const(rng.gen_range(0u64..16) as i64),
        );
        let l = leaf(&mut rng, &b);
        let r = leaf(&mut rng, &b);
        body.push(b.if_then_else(
            cond,
            vec![b.assign(v, Expr::mul(l, Expr::Const(3)))],
            vec![b.assign(v, Expr::add(r, Expr::Const(1)))],
        ));
    }
    body.push(b.write_port("out", Expr::Var(vars[rng.gen_range(0usize..vars.len())])));
    body.push(b.wait());
    let l = b.do_while(
        "main",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("p0"), Expr::Const(0)),
    );
    b.infinite_loop(vec![l]);
    b.build()
}

#[test]
fn fifty_random_programs_are_equivalent_and_verify() {
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(4200.0);
    let mut scheduled = 0usize;
    let mut verified = 0usize;
    for seed in 0..50u64 {
        let behavior = random_behavior(seed);
        let mut cdfg = hls::frontend::elaborate(&behavior).expect("elaborates");
        let body = prepare_innermost_loop(&mut cdfg).expect("linearizes");
        let seq = SchedulerConfig::sequential(clock, 1, 24);
        let pipe = SchedulerConfig::pipelined(clock, 2, 24);
        let seq_ok = check(&format!("rand{seed}/seq"), &body, &lib, seq);
        let pipe_ok = check(&format!("rand{seed}/pipe"), &body, &lib, pipe);
        if seq_ok || pipe_ok {
            scheduled += 1;
        }
        // Differential execution: simulate the scheduled design
        // cycle-accurately against the interpreter on 100 random vectors.
        if seq_ok {
            let result = Synthesizer::new(behavior)
                .clock_ps(4200.0)
                .latency_bounds(1, 24)
                .verify(100)
                .run()
                .unwrap_or_else(|e| panic!("rand{seed}: verified synthesis failed: {e}"));
            let report = result.verification.expect("verification ran");
            assert_eq!(report.iterations, 100, "rand{seed}");
            verified += 1;
        }
    }
    assert!(
        scheduled >= 40,
        "most random programs must schedule, got {scheduled}/50"
    );
    assert!(
        verified >= 35,
        "most random programs must verify, got {verified}/50"
    );
}
