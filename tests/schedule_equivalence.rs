//! Schedule-equivalence regression suite for the incremental scheduler.
//!
//! `Scheduler::run` re-passes incrementally (persisted pass state, resume
//! from the invalidated cone); `Scheduler::run_reference` retains the
//! original schedule-everything-every-pass driver over the verbatim
//! pre-arena `schedule_pass_reference`. The two must be **bit-identical** —
//! same latency, same per-op state and binding, same resource set, same pass
//! count, same action sequence, same worst slack — on every example and
//! paper design and on a population of random builder programs; scheduled
//! designs additionally run through `Synthesizer::verify`, executing the
//! schedule cycle-accurately against the reference interpreter.

use hls::explore::{idct8_design, synthetic_design, verify_schedule, DesignClass, VerifyOptions};
use hls::frontend::ast::{Behavior, BinOp, Expr};
use hls::frontend::BehaviorBuilder;
use hls::ir::analysis::sccs;
use hls::ir::{CmpKind, Dfg, LinearBody, OpKind, PortDirection, Signal};
use hls::opt::linearize::prepare_innermost_loop;
use hls::sched::{RegionPlan, SchedError, Schedule, Scheduler, SchedulerConfig};
use hls::tech::{ClockConstraint, TechLibrary};
use hls::{designs, Synthesizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn assert_equal_schedules(label: &str, incremental: &Schedule, reference: &Schedule) {
    assert_eq!(
        incremental.latency, reference.latency,
        "{label}: latency differs"
    );
    assert_eq!(
        incremental.passes, reference.passes,
        "{label}: pass count differs"
    );
    assert_eq!(
        incremental.actions, reference.actions,
        "{label}: relaxation actions differ"
    );
    assert_eq!(
        incremental.min_slack_ps.to_bits(),
        reference.min_slack_ps.to_bits(),
        "{label}: min slack differs ({} vs {})",
        incremental.min_slack_ps,
        reference.min_slack_ps
    );
    assert_eq!(
        incremental.desc.num_states, reference.desc.num_states,
        "{label}: num_states differs"
    );
    assert_eq!(
        incremental.desc.ii, reference.desc.ii,
        "{label}: II differs"
    );
    assert_eq!(
        incremental.desc.resources, reference.desc.resources,
        "{label}: resource sets differ"
    );
    assert_eq!(
        incremental.desc.ops, reference.desc.ops,
        "{label}: per-op states/bindings differ"
    );
}

/// Runs both drivers on one (body, config) and asserts identical outcomes —
/// including identical failures for over-constrained specs.
fn check(label: &str, body: &LinearBody, lib: &TechLibrary, config: SchedulerConfig) -> bool {
    let incremental = Scheduler::new(body, lib, config.clone()).run();
    let reference = Scheduler::new(body, lib, config).run_reference();
    match (incremental, reference) {
        (Ok(a), Ok(b)) => {
            assert_equal_schedules(label, &a, &b);
            true
        }
        (
            Err(a @ (SchedError::Overconstrained { .. } | SchedError::BudgetExhausted { .. })),
            Err(b @ (SchedError::Overconstrained { .. } | SchedError::BudgetExhausted { .. })),
        ) => {
            assert_eq!(a, b, "{label}: failures differ");
            false
        }
        (a, b) => panic!(
            "{label}: drivers disagree on success: incremental={:?} reference={:?}",
            a.map(|s| s.latency),
            b.map(|s| s.latency)
        ),
    }
}

fn configs_for(clock_ps: f64, max_latency: u32) -> Vec<(String, SchedulerConfig)> {
    let clock = ClockConstraint::from_period_ps(clock_ps);
    vec![
        (
            "seq".into(),
            SchedulerConfig::sequential(clock, 1, max_latency),
        ),
        (
            "pipe-ii2".into(),
            SchedulerConfig::pipelined(clock, 2, max_latency),
        ),
        (
            "pipe-ii1".into(),
            SchedulerConfig::pipelined(clock, 1, max_latency),
        ),
    ]
}

#[test]
fn paper_example1_is_equivalent_in_all_microarchitectures() {
    let mut cdfg = designs::paper_example1_cdfg().expect("elab");
    let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
    let lib = TechLibrary::artisan_90nm_typical();
    for (name, config) in configs_for(1600.0, 6) {
        check(&format!("example1/{name}"), &body, &lib, config);
    }
    // the deliberately over-constrained case must fail identically too
    let mut tight = SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 1);
    tight.allow_add_resources = false;
    check("example1/overconstrained", &body, &lib, tight);
}

#[test]
fn example_designs_are_equivalent() {
    let lib = TechLibrary::artisan_90nm_typical();
    let mut scheduled = 0;
    for (name, behavior) in [
        ("moving_average", designs::moving_average(3, 16)),
        ("fir4", designs::fir_filter(&[3, -5, 7, 9], 16)),
    ] {
        let mut cdfg = hls::frontend::elaborate(&behavior).expect("elab");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        for (cname, config) in configs_for(1600.0, 12) {
            if check(&format!("{name}/{cname}"), &body, &lib, config) {
                scheduled += 1;
            }
        }
    }
    assert!(scheduled >= 4, "most example configs must schedule");
}

#[test]
fn idct_and_synthetic_designs_are_equivalent() {
    let lib = TechLibrary::artisan_90nm_typical();
    let idct = idct8_design();
    for (cname, config) in configs_for(2000.0, 16) {
        check(&format!("idct8/{cname}"), &idct, &lib, config);
    }
    let mut scheduled = 0;
    for (i, class) in DesignClass::all().into_iter().enumerate() {
        for &size in &[120usize, 260] {
            let body = synthetic_design(class, size, 7 + i as u64);
            let clock = ClockConstraint::from_period_ps(1900.0);
            let mut seq = SchedulerConfig::sequential(clock, 1, 24);
            seq.max_passes = 128;
            let mut pipe = SchedulerConfig::pipelined(clock, 2, 24);
            pipe.max_passes = 128;
            if check(&format!("{class:?}/{size}/seq"), &body, &lib, seq) {
                scheduled += 1;
            }
            if check(&format!("{class:?}/{size}/pipe"), &body, &lib, pipe) {
                scheduled += 1;
            }
        }
    }
    assert!(scheduled >= 4, "several synthetic configs must schedule");
}

/// Compact random-behaviour generator (the `prop_differential` shape:
/// arithmetic/logic/shift/div expressions, a predicated region, a port
/// write, loop-carried state through the variables).
fn random_behavior(seed: u64) -> Behavior {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = BehaviorBuilder::new(format!("eq{seed}"));
    b.port_in("p0", 16);
    b.port_in("p1", 8);
    b.port_out("out", 16);
    let n_vars = rng.gen_range(1usize..=3);
    let widths = [8u16, 16, 32];
    let vars: Vec<_> = (0..n_vars)
        .map(|i| {
            let w = widths[rng.gen_range(0usize..3)];
            let init = rng.gen_range(0u64..64) as i64 - 32;
            b.var(format!("v{i}"), w, init)
        })
        .collect();
    let leaf = |rng: &mut SmallRng, b: &BehaviorBuilder| -> Expr {
        match rng.gen_range(0u32..5) {
            0 => b.read_port("p0"),
            1 => b.read_port("p1"),
            2 | 3 => Expr::Var(vars[rng.gen_range(0usize..vars.len())]),
            _ => Expr::Const(rng.gen_range(0u64..512) as i64 - 256),
        }
    };
    let node = |rng: &mut SmallRng, a: Expr, c: Expr| -> Expr {
        match rng.gen_range(0u32..10) {
            0 => Expr::add(a, c),
            1 => Expr::sub(a, c),
            2 => Expr::mul(a, c),
            3 => Expr::Binary(BinOp::And, Box::new(a), Box::new(c)),
            4 => Expr::Binary(BinOp::Xor, Box::new(a), Box::new(c)),
            5 => Expr::shl(a, Expr::Const(rng.gen_range(0u64..20) as i64)),
            6 => Expr::shr(a, Expr::Const(rng.gen_range(0u64..20) as i64)),
            7 => Expr::Binary(BinOp::Div, Box::new(a), Box::new(c)),
            8 => Expr::Binary(BinOp::Rem, Box::new(a), Box::new(c)),
            _ => Expr::select(Expr::cmp(CmpKind::Gt, a.clone(), Expr::Const(0)), a, c),
        }
    };
    let mut body = Vec::new();
    for _ in 0..rng.gen_range(2usize..6) {
        let var = vars[rng.gen_range(0usize..vars.len())];
        let l0 = leaf(&mut rng, &b);
        let l1 = leaf(&mut rng, &b);
        let mut e = node(&mut rng, l0, l1);
        if rng.gen_bool(0.5) {
            let l2 = leaf(&mut rng, &b);
            e = node(&mut rng, e, l2);
        }
        body.push(b.assign(var, e));
    }
    if rng.gen_bool(0.7) {
        let v = vars[rng.gen_range(0usize..vars.len())];
        let cond = Expr::cmp(
            CmpKind::Gt,
            Expr::Var(v),
            Expr::Const(rng.gen_range(0u64..16) as i64),
        );
        let l = leaf(&mut rng, &b);
        let r = leaf(&mut rng, &b);
        body.push(b.if_then_else(
            cond,
            vec![b.assign(v, Expr::mul(l, Expr::Const(3)))],
            vec![b.assign(v, Expr::add(r, Expr::Const(1)))],
        ));
    }
    body.push(b.write_port("out", Expr::Var(vars[rng.gen_range(0usize..vars.len())])));
    body.push(b.wait());
    let l = b.do_while(
        "main",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("p0"), Expr::Const(0)),
    );
    b.infinite_loop(vec![l]);
    b.build()
}

#[test]
fn fifty_random_programs_are_equivalent_and_verify() {
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(4200.0);
    let mut scheduled = 0usize;
    let mut verified = 0usize;
    for seed in 0..50u64 {
        let behavior = random_behavior(seed);
        let mut cdfg = hls::frontend::elaborate(&behavior).expect("elaborates");
        let body = prepare_innermost_loop(&mut cdfg).expect("linearizes");
        let seq = SchedulerConfig::sequential(clock, 1, 24);
        let pipe = SchedulerConfig::pipelined(clock, 2, 24);
        let seq_ok = check(&format!("rand{seed}/seq"), &body, &lib, seq);
        let pipe_ok = check(&format!("rand{seed}/pipe"), &body, &lib, pipe);
        if seq_ok || pipe_ok {
            scheduled += 1;
        }
        // Differential execution: simulate the scheduled design
        // cycle-accurately against the interpreter on 100 random vectors.
        if seq_ok {
            let result = Synthesizer::new(behavior)
                .clock_ps(4200.0)
                .latency_bounds(1, 24)
                .verify(100)
                .run()
                .unwrap_or_else(|e| panic!("rand{seed}: verified synthesis failed: {e}"));
            let report = result.verification.expect("verification ran");
            assert_eq!(report.iterations, 100, "rand{seed}");
            verified += 1;
        }
    }
    assert!(
        scheduled >= 40,
        "most random programs must schedule, got {scheduled}/50"
    );
    assert!(
        verified >= 35,
        "most random programs must verify, got {verified}/50"
    );
}

// ---------------------------------------------------------------------------
// Region decomposition
// ---------------------------------------------------------------------------

/// [`check`] plus cycle-accurate differential execution of the (possibly
/// region-decomposed) incremental schedule against the reference interpreter
/// on 100 random vectors.
fn check_and_verify(
    label: &str,
    body: &LinearBody,
    lib: &TechLibrary,
    config: SchedulerConfig,
) -> bool {
    let scheduled = check(label, body, lib, config.clone());
    if scheduled {
        let schedule = Scheduler::new(body, lib, config).run().expect("re-run");
        let report = verify_schedule(body, &schedule.desc, &VerifyOptions::vectors(100))
            .unwrap_or_else(|e| panic!("{label}: differential verification failed: {e}"));
        assert_eq!(report.iterations, 100, "{label}");
    }
    scheduled
}

/// Feed-forward chain: read → n dependent adds → write. No SCCs, so a unit
/// region target puts every operation in its own region.
fn chain_design(n: usize) -> LinearBody {
    let mut dfg = Dfg::new();
    let w: u16 = 16;
    let p_in = dfg.add_port("in0", PortDirection::Input, w);
    let p_out = dfg.add_port("out", PortDirection::Output, w);
    let mut cur = Signal::op_w(dfg.add_op(OpKind::Read(p_in), w, vec![]), w);
    for i in 0..n {
        let op = dfg.add_op(OpKind::Add, w, vec![cur, Signal::constant(i as i64 + 1, w)]);
        cur = Signal::op_w(op, w);
    }
    dfg.add_op(OpKind::Write(p_out), w, vec![cur]);
    let mut body = LinearBody::from_dfg("chain", dfg);
    body.source_states = 1;
    body
}

/// A design whose operations almost all sit inside one recurrence: a chain
/// of adds whose first link consumes the loop-carried value of the last.
fn giant_scc_design(chain: usize) -> LinearBody {
    let mut dfg = Dfg::new();
    let w: u16 = 16;
    let p_in = dfg.add_port("in0", PortDirection::Input, w);
    let p_out = dfg.add_port("out", PortDirection::Output, w);
    let read = dfg.add_op(OpKind::Read(p_in), w, vec![]);
    let first = dfg.add_op(
        OpKind::Add,
        w,
        vec![Signal::op_w(read, w), Signal::constant(0, w)],
    );
    let mut prev = first;
    for _ in 0..chain {
        prev = dfg.add_op(
            OpKind::Add,
            w,
            vec![Signal::op_w(prev, w), Signal::constant(1, w)],
        );
    }
    dfg.op_mut(first).inputs[1] = Signal::carried(prev, w, 1);
    dfg.add_op(OpKind::Write(p_out), w, vec![Signal::op_w(prev, w)]);
    let mut body = LinearBody::from_dfg("giant_scc", dfg);
    body.source_states = 1;
    body
}

#[test]
fn region_decomposition_is_bit_identical_across_targets() {
    let lib = TechLibrary::artisan_90nm_typical();
    let mut cdfg = designs::paper_example1_cdfg().expect("elab");
    let example1 = prepare_innermost_loop(&mut cdfg).expect("prepare");
    let idct = idct8_design();
    let mut scheduled = 0;
    for &target in &[1usize, 4, 40] {
        for (cname, config) in configs_for(1600.0, 6) {
            if check(
                &format!("example1/regions{target}/{cname}"),
                &example1,
                &lib,
                config.with_region_decomposition(target),
            ) {
                scheduled += 1;
            }
        }
        for (cname, config) in configs_for(2000.0, 16) {
            if check(
                &format!("idct8/regions{target}/{cname}"),
                &idct,
                &lib,
                config.with_region_decomposition(target),
            ) {
                scheduled += 1;
            }
        }
    }
    // synthetic designs of every class through a mid-size region target
    for (i, class) in DesignClass::all().into_iter().enumerate() {
        let body = synthetic_design(class, 260, 7 + i as u64);
        let clock = ClockConstraint::from_period_ps(1900.0);
        let mut seq = SchedulerConfig::sequential(clock, 1, 24).with_region_decomposition(40);
        seq.max_passes = 128;
        let mut pipe = SchedulerConfig::pipelined(clock, 2, 24).with_region_decomposition(40);
        pipe.max_passes = 128;
        if check(&format!("{class:?}/260/regions/seq"), &body, &lib, seq) {
            scheduled += 1;
        }
        if check(&format!("{class:?}/260/regions/pipe"), &body, &lib, pipe) {
            scheduled += 1;
        }
    }
    assert!(
        scheduled >= 12,
        "most region-decomposed configs must schedule, got {scheduled}"
    );
}

#[test]
fn giant_scc_falls_back_to_a_single_region_with_no_overhead() {
    let body = giant_scc_design(24);
    let components = sccs(&body.dfg);
    // the recurrence chain is one SCC spanning nearly every op
    assert_eq!(components.len(), 1);
    assert!(components[0].len() >= 25, "{}", components[0].len());
    // a small target cannot split it: the SCC stays atomic in its region
    let plan = RegionPlan::build(&body, &components, 4);
    let scc_regions: std::collections::BTreeSet<u32> = components[0]
        .ops
        .iter()
        .map(|id| plan.region_of[id.index()])
        .collect();
    assert_eq!(scc_regions.len(), 1, "an SCC must never straddle regions");
    // an over-large target degenerates to the trivial single-region plan...
    assert!(RegionPlan::build(&body, &components, 1_000_000).is_trivial());
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(1900.0);
    let plain = SchedulerConfig::sequential(clock, 1, 48);
    let fallback = plain.clone().with_region_decomposition(1_000_000);
    // ...and that fallback is bit-identical to a run with no region config
    let a = Scheduler::new(&body, &lib, plain).run().expect("plain");
    let b = Scheduler::new(&body, &lib, fallback)
        .run()
        .expect("fallback");
    assert_equal_schedules("giant-scc/fallback", &a, &b);
    // the small-target run still matches its own reference driver and
    // executes bit-exactly
    let tight = SchedulerConfig::sequential(clock, 1, 48).with_region_decomposition(4);
    assert!(check_and_verify("giant-scc/regions4", &body, &lib, tight));
}

#[test]
fn pure_chain_with_unit_target_makes_every_op_a_region() {
    let body = chain_design(12);
    let components = sccs(&body.dfg);
    assert!(components.is_empty(), "a feed-forward chain has no SCCs");
    let plan = RegionPlan::build(&body, &components, 1);
    assert_eq!(
        plan.regions.len(),
        body.dfg.num_ops(),
        "target 1: every op is its own region"
    );
    let lib = TechLibrary::artisan_90nm_typical();
    for (cname, config) in configs_for(1900.0, 24) {
        assert!(check_and_verify(
            &format!("chain/regions1/{cname}"),
            &body,
            &lib,
            config.with_region_decomposition(1),
        ));
    }
}

#[test]
fn cross_region_interface_value_feeding_a_predicated_op() {
    let mut b = BehaviorBuilder::new("pred_regions");
    b.port_in("p0", 16);
    b.port_out("out", 16);
    let v = b.var("v", 16, 1);
    let t = b.var("t", 16, 5);
    let seed_expr = Expr::add(b.read_port("p0"), Expr::Const(2));
    let cond = Expr::cmp(CmpKind::Gt, Expr::Var(v), Expr::Const(3));
    let then_e = Expr::mul(Expr::Var(t), Expr::Const(3));
    let else_e = Expr::add(Expr::Var(t), Expr::Const(1));
    let stmts = vec![
        b.assign(t, seed_expr),
        b.if_then_else(cond, vec![b.assign(v, then_e)], vec![b.assign(v, else_e)]),
        b.write_port("out", Expr::Var(v)),
        b.wait(),
    ];
    let l = b.do_while(
        "main",
        stmts,
        Expr::cmp(CmpKind::Ne, b.read_port("p0"), Expr::Const(0)),
    );
    b.infinite_loop(vec![l]);
    let behavior = b.build();
    let mut cdfg = hls::frontend::elaborate(&behavior).expect("elab");
    let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(2600.0);
    // unit target: the value `t` is produced in one region and consumed by
    // the predicated select (and its condition) in others
    let config = SchedulerConfig::sequential(clock, 1, 24).with_region_decomposition(1);
    assert!(check_and_verify("predicated/regions1", &body, &lib, config));
    // and end-to-end through the synthesizer's differential harness
    let result = Synthesizer::new(behavior)
        .clock_ps(2600.0)
        .latency_bounds(1, 24)
        .verify(100)
        .run()
        .expect("verified synthesis");
    let report = result.verification.expect("verification ran");
    assert_eq!(report.iterations, 100);
}
