//! Property-based end-to-end tests: randomly generated designs must always
//! produce schedules that respect dependencies, resource exclusivity and the
//! clock constraint.
use hls::explore::{synthetic_design, DesignClass};
use hls::sched::{Scheduler, SchedulerConfig};
use hls::tech::{ClockConstraint, TechLibrary};
use proptest::prelude::*;

fn class_strategy() -> impl Strategy<Value = DesignClass> {
    prop_oneof![
        Just(DesignClass::Filter),
        Just(DesignClass::Fft),
        Just(DesignClass::ImageKernel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn random_designs_schedule_and_respect_invariants(
        class in class_strategy(),
        ops in 40usize..160,
        seed in 0u64..1000,
        pipelined in any::<bool>(),
    ) {
        let body = synthetic_design(class, ops, seed);
        prop_assert!(body.validate().is_ok());
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(1800.0);
        let config = if pipelined {
            SchedulerConfig::pipelined(clock, 2, 32)
        } else {
            SchedulerConfig::sequential(clock, 1, 32)
        };
        let Ok(schedule) = Scheduler::new(&body, &lib, config).run() else {
            // an over-constrained random instance is acceptable; nothing to check
            return Ok(());
        };
        // dependencies respected
        for dep in body.dfg.data_deps() {
            if dep.distance == 0 {
                prop_assert!(schedule.desc.state_of(dep.from) <= schedule.desc.state_of(dep.to));
            }
        }
        // no non-exclusive double booking per folded state
        let ii = schedule.desc.ii.unwrap_or(schedule.latency).max(1);
        let mut used: std::collections::HashMap<(u32, u32), Vec<hls::ir::OpId>> = std::collections::HashMap::new();
        for (id, s) in &schedule.desc.ops {
            if let Some(r) = s.resource {
                used.entry((r.0, s.state % ii)).or_default().push(*id);
            }
        }
        for ops in used.values() {
            for i in 0..ops.len() {
                for j in (i + 1)..ops.len() {
                    let a = &body.dfg.op(ops[i]).predicate;
                    let b = &body.dfg.op(ops[j]).predicate;
                    prop_assert!(a.mutually_exclusive(b));
                }
            }
        }
        // positive slack
        prop_assert!(schedule.min_slack_ps >= 0.0);
    }
}
