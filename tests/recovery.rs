//! Graceful degradation: the recovery ladder turns hard failures into
//! degraded-but-reported results, records every rung it walks, and fails
//! with the full trace when it runs out of rungs.

use hls::lint::{Lint, LintConfig};
use hls::sched::SchedError;
use hls::{designs, RecoveryAction, RecoveryPolicy, SynthesisError, Synthesizer};
use std::error::Error;

/// The idct8 row design at a clock 45 ps below what its multipliers can
/// meet: scheduling is infeasible at any latency.
fn infeasible_idct8() -> hls::BodySynthesizer {
    Synthesizer::from_body(hls::explore::idct8_design())
        .clock_ps(1200.0)
        .latency_bounds(1, 16)
}

#[test]
fn recovery_is_off_by_default() {
    let err = infeasible_idct8()
        .lint_config(LintConfig::deny_timing())
        .run()
        .unwrap_err();
    match err {
        SynthesisError::Scheduling(SchedError::Overconstrained { worst_slack_ps, .. }) => {
            assert!(
                worst_slack_ps < 0.0,
                "slack-driven failure reports its shortfall: {worst_slack_ps}"
            );
        }
        other => panic!("expected a scheduling error, got: {other}"),
    }
}

#[test]
fn idct8_at_an_infeasible_clock_degrades_through_the_full_ladder() {
    let result = infeasible_idct8()
        .lint_config(LintConfig::deny_timing())
        .recover(RecoveryPolicy::standard())
        .run()
        .expect("the ladder must reach a reported result");

    // the full escalation sequence, in order: latency relaxation (does not
    // help a slack-driven failure), clock stretch (makes it schedulable),
    // extra timed-rewrite rounds (cannot fix a single-op path), acceptance
    assert_eq!(result.recovery.len(), 4, "trace: {:?}", result.recovery);
    assert!(
        matches!(
            result.recovery[0].action,
            RecoveryAction::RelaxLatency { .. }
        ),
        "{:?}",
        result.recovery[0]
    );
    assert!(
        matches!(
            result.recovery[1].action,
            RecoveryAction::StretchClock { from_ps, to_ps }
                if from_ps == 1200.0 && to_ps > from_ps
        ),
        "{:?}",
        result.recovery[1]
    );
    assert!(
        matches!(
            result.recovery[2].action,
            RecoveryAction::ExtraTimedRounds { rounds } if rounds > hls::lint::MAX_ROUNDS
        ),
        "{:?}",
        result.recovery[2]
    );
    assert!(
        matches!(result.recovery[3].action, RecoveryAction::AcceptDegraded),
        "{:?}",
        result.recovery[3]
    );
    // every step records which attempt failed and why
    for (i, step) in result.recovery.iter().enumerate() {
        assert_eq!(step.attempt, i as u32 + 1);
        assert!(!step.trigger.is_empty());
    }

    // the result is degraded and says so honestly: the deny-level setup
    // violation is kept in the report, the STA shows the miss, and the RTL
    // still exists
    assert!(result.degraded);
    assert!(
        !result.recovery.is_empty(),
        "degraded implies a walked ladder"
    );
    assert!(result.lint.deny_count() >= 1, "{}", result.lint.render());
    assert!(result.lint.count_of(Lint::SetupViolation) >= 1);
    let wns = result.lint.timing.as_ref().expect("timing summary").wns_ps;
    assert!(wns < 0.0, "the requested clock is reported missed: {wns}");
    assert!(result.rtl.contains("module"));
    assert!(result.area > 0.0);
}

#[test]
fn a_stretched_clock_marks_the_result_degraded_even_without_denies() {
    // default lint config: setup violations are warn-level, so the
    // stretched run returns Ok on its own — but it must still be flagged,
    // or the stretch would be a silent re-target
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(600.0)
        .latency_bounds(1, 2)
        .recover(RecoveryPolicy::standard())
        .run()
        .expect("recoverable");
    assert!(result.degraded);
    assert_eq!(result.lint.deny_count(), 0);
    assert!(
        result
            .recovery
            .iter()
            .any(|s| matches!(s.action, RecoveryAction::StretchClock { .. })),
        "{:?}",
        result.recovery
    );
    let wns = result.lint.timing.as_ref().expect("timing summary").wns_ps;
    assert!(
        wns < 0.0,
        "signoff still reports the requested clock: {wns}"
    );
}

#[test]
fn a_feasible_run_with_recovery_armed_takes_no_steps() {
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .recover(RecoveryPolicy::standard())
        .run()
        .expect("feasible");
    assert!(result.recovery.is_empty());
    assert!(!result.degraded);
}

#[test]
fn an_exhausted_ladder_reports_the_full_trace() {
    // only the latency rung is armed; it cannot fix a slack-driven failure
    let policy = RecoveryPolicy {
        max_retries: 1,
        latency_headroom: 8,
        ..RecoveryPolicy::disabled()
    };
    let err = infeasible_idct8()
        .lint_config(LintConfig::deny_timing())
        .recover(policy)
        .run()
        .unwrap_err();
    match &err {
        SynthesisError::RecoveryExhausted {
            attempts,
            trace,
            last,
        } => {
            assert_eq!(*attempts, 2);
            assert_eq!(trace.len(), 1);
            assert!(matches!(
                trace[0].action,
                RecoveryAction::RelaxLatency { from: 16, to: 24 }
            ));
            assert!(matches!(**last, SynthesisError::Scheduling(_)), "{last}");
        }
        other => panic!("expected RecoveryExhausted, got: {other}"),
    }
    let text = err.to_string();
    assert!(
        text.contains("recovery exhausted after 2 attempt(s)"),
        "{text}"
    );
    assert!(text.contains("relax latency bound 16 -> 24"), "{text}");
}

#[test]
fn error_sources_chain_through_the_stack() {
    // a plain scheduling failure: SynthesisError -> SchedError
    let err = infeasible_idct8().run().unwrap_err();
    let source = err.source().expect("scheduling errors carry a source");
    assert!(source.is::<SchedError>(), "{source}");

    // an exhausted ladder: RecoveryExhausted -> last SynthesisError -> SchedError
    let policy = RecoveryPolicy {
        max_retries: 1,
        latency_headroom: 8,
        ..RecoveryPolicy::disabled()
    };
    let err = infeasible_idct8().recover(policy).run().unwrap_err();
    let mut depth = 0;
    let mut cursor: &dyn Error = &err;
    while let Some(next) = cursor.source() {
        depth += 1;
        cursor = next;
    }
    assert!(
        depth >= 2,
        "RecoveryExhausted chains through the failing attempt: depth {depth}"
    );
}
