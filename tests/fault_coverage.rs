//! Mutation testing the verification stack: inject every cataloged fault
//! class into known-good lowered netlists and assert the checker stack
//! (`validate` → `hls_lint::analyze` → netlist differential) kills every
//! mutant — or that the escape is the class's named, documented one
//! (`FaultClass::documented_escape`). An undocumented escape is a hole in
//! the checkers and fails these tests.

use hls::fault::{run_sweep, FaultClass, FaultConfig, FaultOutcome};
use hls::tech::{ClockConstraint, TechLibrary};
use hls::{designs, Synthesizer};

/// Sweeps a finished synthesis result with the default fault config.
fn sweep_of(result: &hls::SynthesisResult, clock_ps: f64) -> hls::fault::FaultCoverageReport {
    let lib = TechLibrary::artisan_90nm_typical();
    run_sweep(
        &result.body,
        &result.netlist,
        &lib,
        ClockConstraint::from_period_ps(clock_ps),
        &FaultConfig::default(),
    )
}

#[test]
fn every_fault_class_is_killed_on_the_paper_example() {
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .run()
        .expect("synthesizable");
    let report = sweep_of(&result, 1600.0);
    assert!(
        report.baseline_ok,
        "unmutated netlist must pass all checkers"
    );
    assert!(report.mutants() > 0, "catalog found no sites");
    assert!(
        report.is_covered(),
        "undocumented escapes:\n{}",
        report.kill_matrix()
    );
    // the catalog exercises a broad slice of its classes on this design
    let populated = report.summaries().iter().filter(|s| s.mutants > 0).count();
    assert!(
        populated >= 6,
        "only {populated} classes had sites:\n{}",
        report.kill_matrix()
    );
    // documented escapes are exactly the two named families: architecturally
    // shielded reset values, and enable faults on input-sampling registers
    for o in &report.outcomes {
        if let FaultOutcome::Escaped { documented, .. } = &o.outcome {
            assert!(documented, "undocumented escape: {:?}", o.spec);
            assert!(
                matches!(
                    o.spec.class,
                    FaultClass::RegInitFlip | FaultClass::DroppedEnable | FaultClass::WrongEnable
                ),
                "{:?}",
                o.spec
            );
        }
    }
}

#[test]
fn every_fault_class_is_killed_on_a_pipelined_design() {
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(2)
        .run()
        .expect("synthesizable");
    let report = sweep_of(&result, 1600.0);
    assert!(report.baseline_ok);
    assert!(
        report.is_covered(),
        "undocumented escapes:\n{}",
        report.kill_matrix()
    );
}

#[test]
fn fault_sweeps_are_deterministic() {
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .run()
        .expect("synthesizable");
    let a = sweep_of(&result, 1600.0);
    let b = sweep_of(&result, 1600.0);
    assert_eq!(a, b, "same inputs and seed must reproduce the same sweep");
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn the_coverage_report_serializes_machine_readably() {
    let result = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 3)
        .run()
        .expect("synthesizable");
    let report = sweep_of(&result, 1600.0);
    let json = report.to_json();
    assert!(json.contains("\"covered\": true"), "{json}");
    assert!(json.contains("\"baseline_ok\": true"));
    for class in FaultClass::ALL {
        assert!(json.contains(&format!("\"class\": \"{class}\"")), "{class}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // and the kill matrix names every class for humans
    let matrix = report.kill_matrix();
    for class in FaultClass::ALL {
        assert!(matrix.contains(class.name()), "{class} missing:\n{matrix}");
    }
}

mod random_netlists {
    use super::*;
    use hls::bind::{bind, lower, RtlStyle};
    use hls::frontend::ast::{Behavior, BinOp, Expr};
    use hls::frontend::BehaviorBuilder;
    use hls::ir::CmpKind;
    use hls::opt::linearize::prepare_innermost_loop;
    use hls::sched::{Scheduler, SchedulerConfig};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Random behaviour in the same shape as the round-trip properties: a
    /// few variables, straight-line assignments over random expressions, a
    /// predicated region and a port write.
    fn random_behavior(seed: u64) -> Behavior {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = BehaviorBuilder::new(format!("fault{seed}"));
        b.port_in("p0", 16);
        b.port_in("p1", 8);
        b.port_out("out", 16);
        let n_vars = rng.gen_range(1usize..=3);
        let widths = [8u16, 16, 32];
        let vars: Vec<_> = (0..n_vars)
            .map(|i| {
                let w = widths[rng.gen_range(0usize..3)];
                let init = rng.gen_range(0u64..64) as i64 - 32;
                b.var(format!("v{i}"), w, init)
            })
            .collect();
        let leaf = |rng: &mut SmallRng, b: &BehaviorBuilder| -> Expr {
            match rng.gen_range(0u32..5) {
                0 => b.read_port("p0"),
                1 => b.read_port("p1"),
                2 | 3 => Expr::Var(vars[rng.gen_range(0usize..vars.len())]),
                _ => Expr::Const(rng.gen_range(0u64..512) as i64 - 256),
            }
        };
        let node = |rng: &mut SmallRng, a: Expr, c: Expr| -> Expr {
            match rng.gen_range(0u32..6) {
                0 => Expr::add(a, c),
                1 => Expr::sub(a, c),
                2 => Expr::mul(a, c),
                3 => Expr::Binary(BinOp::Xor, Box::new(a), Box::new(c)),
                4 => Expr::shl(a, Expr::Const(rng.gen_range(0u64..12) as i64)),
                _ => Expr::select(Expr::cmp(CmpKind::Gt, a.clone(), Expr::Const(0)), a, c),
            }
        };
        let mut body = Vec::new();
        for _ in 0..rng.gen_range(2usize..5) {
            let var = vars[rng.gen_range(0usize..vars.len())];
            let l0 = leaf(&mut rng, &b);
            let l1 = leaf(&mut rng, &b);
            body.push(b.assign(var, node(&mut rng, l0, l1)));
        }
        if rng.gen_bool(0.5) {
            let v = vars[rng.gen_range(0usize..vars.len())];
            let cond = Expr::cmp(
                CmpKind::Gt,
                Expr::Var(v),
                Expr::Const(rng.gen_range(0u64..16) as i64),
            );
            let l = leaf(&mut rng, &b);
            let r = leaf(&mut rng, &b);
            body.push(b.if_then_else(
                cond,
                vec![b.assign(v, Expr::mul(l, Expr::Const(3)))],
                vec![b.assign(v, Expr::add(r, Expr::Const(1)))],
            ));
        }
        body.push(b.write_port("out", Expr::Var(vars[rng.gen_range(0usize..vars.len())])));
        body.push(b.wait());
        let l = b.do_while(
            "main",
            body,
            Expr::cmp(CmpKind::Ne, b.read_port("p0"), Expr::Const(0)),
        );
        b.infinite_loop(vec![l]);
        b.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

        /// Every cataloged fault injected into a random lowered netlist is
        /// killed by the checker stack or is one of the named, documented
        /// escape families — on arbitrary designs, not just the curated
        /// examples.
        #[test]
        fn every_fault_class_is_killed_on_random_lowered_netlists(
            seed in 0u64..10_000,
            pipelined in any::<bool>(),
        ) {
            let behavior = random_behavior(seed);
            let mut cdfg = hls::frontend::elaborate(&behavior).expect("elaborates");
            let body = prepare_innermost_loop(&mut cdfg).expect("linearizes");
            let lib = TechLibrary::artisan_90nm_typical();
            let clock = ClockConstraint::from_period_ps(4200.0);
            let config = if pipelined {
                SchedulerConfig::pipelined(clock, 2, 24)
            } else {
                SchedulerConfig::sequential(clock, 1, 24)
            };
            let Ok(schedule) = Scheduler::new(&body, &lib, config).run() else {
                // an over-constrained random instance is acceptable
                return Ok(());
            };
            let bound = bind(&body, &schedule.desc)
                .map_err(|e| TestCaseError::fail(format!("seed {seed}: bind: {e}")))?;
            let mut m = lower(&body, &schedule.desc, &bound, RtlStyle::SharedFu)
                .map_err(|e| TestCaseError::fail(format!("seed {seed}: lower: {e}")))?;
            hls::netlist::optimize(&mut m);
            // Non-strict propagation: generated programs routinely contain
            // semantically dead datapath (e.g. `low8(x << 11)`) that no
            // stimulus can propagate; the curated tests above keep the
            // strict default where infection without propagation fails.
            let fc = FaultConfig {
                vectors: 24,
                max_per_class: 3,
                strict_propagation: false,
                ..FaultConfig::default()
            };
            let report = run_sweep(&body, &m, &lib, clock, &fc);
            prop_assert!(report.baseline_ok, "seed {seed}: baseline must pass");
            prop_assert!(
                report.is_covered(),
                "seed {seed}: undocumented escapes:\n{}",
                report.kill_matrix()
            );
        }
    }
}
