//! Runs the fault-injection campaign over the repository's stock designs
//! and writes one coverage JSON report per design.
//!
//! CI runs this and uploads the reports as artifacts; locally:
//!
//! ```text
//! cargo run --release --example fault_coverage [out_dir]
//! ```
//!
//! Exits non-zero if any design fails to synthesize or any mutant escapes
//! the checker stack without a documented justification.
use hls::designs::{fir_filter, moving_average, paper_example1};
use hls::explore::idct8_design;
use hls::fault::{run_sweep, FaultConfig};
use hls::tech::{ClockConstraint, TechLibrary};
use hls::{SynthesisResult, Synthesizer};

fn report(
    name: &str,
    clock_ps: f64,
    result: Result<SynthesisResult, hls::SynthesisError>,
    out_dir: &std::path::Path,
) -> Result<bool, Box<dyn std::error::Error>> {
    let result = result.map_err(|e| format!("{name}: {e}"))?;
    let lib = TechLibrary::artisan_90nm_typical();
    let sweep = run_sweep(
        &result.body,
        &result.netlist,
        &lib,
        ClockConstraint::from_period_ps(clock_ps),
        &FaultConfig::default(),
    );
    print!("{}", sweep.kill_matrix());
    std::fs::write(out_dir.join(format!("{name}.json")), sweep.to_json())?;
    Ok(sweep.is_covered())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "target/fault-coverage".into()),
    );
    std::fs::create_dir_all(&out_dir)?;

    let mut covered = true;
    covered &= report(
        "example1_sequential",
        1600.0,
        Synthesizer::new(paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 3)
            .run(),
        &out_dir,
    )?;
    covered &= report(
        "example1_ii2",
        1600.0,
        Synthesizer::new(paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 6)
            .pipeline(2)
            .run(),
        &out_dir,
    )?;
    covered &= report(
        "moving_average_ii1",
        1600.0,
        Synthesizer::new(moving_average(2, 16))
            .clock_ps(1600.0)
            .latency_bounds(1, 8)
            .pipeline(1)
            .run(),
        &out_dir,
    )?;
    covered &= report(
        "fir8_sequential",
        1600.0,
        Synthesizer::new(fir_filter(&[3, -5, 7, 11, 11, 7, -5, 3], 16))
            .clock_ps(1600.0)
            .latency_bounds(1, 16)
            .run(),
        &out_dir,
    )?;
    covered &= report(
        "idct8_sequential",
        2000.0,
        Synthesizer::from_body(idct8_design())
            .clock_ps(2000.0)
            .latency_bounds(1, 16)
            .run(),
        &out_dir,
    )?;
    println!("reports written to {}", out_dir.display());
    if !covered {
        return Err("undocumented escapes — see the kill matrices above".into());
    }
    Ok(())
}
