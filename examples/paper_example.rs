//! Reproduces the paper's running example end to end: Table 1 (library),
//! Table 2 (sequential schedule), Table 3 (micro-architecture comparison) and
//! the Example 2/3 pipelined schedules.
use hls::explore::{table1_library, table2_example1_schedule, table3_microarchitectures};
use hls::{designs, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TABLE 1 — resource delays (ps)");
    for (name, delay) in table1_library() {
        println!("  {name:6} {delay:6.0}");
    }

    let t2 = table2_example1_schedule();
    println!(
        "\nTABLE 2 — sequential schedule (latency {}, {} passes)\n{}",
        t2.latency, t2.passes, t2.table
    );

    println!("TABLE 3 — micro-architecture comparison");
    for row in table3_microarchitectures() {
        println!(
            "  {:12} {:>2} cycles/iteration  area {:>9.0}  ({} multipliers)",
            row.name, row.cycles_per_iteration, row.area, row.multipliers
        );
    }

    println!("\nExample 2 — pipelined, II = 2");
    let p2 = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(2)
        .run()?;
    println!("{}", p2.schedule_table());
    println!("Example 3 — pipelined, II = 1");
    let p1 = Synthesizer::new(designs::paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(1)
        .run()?;
    println!("{}", p1.schedule_table());
    Ok(())
}
