//! Design-space exploration of the IDCT (Figures 10 and 11): pipelined and
//! non-pipelined micro-architectures over a clock sweep, with the Pareto
//! front highlighted.
use hls::explore::experiments::{idct_exploration, render_points};
use hls::explore::pareto_front;

fn main() {
    let points = idct_exploration(&[1300.0, 1600.0, 2100.0, 2600.0]);
    println!("{}", render_points(&points));
    println!("Pareto-optimal implementations (delay vs area):");
    for p in pareto_front(&points) {
        println!(
            "  {:26} delay {:7.1} ns  area {:9.0}  power {:8.1} uW",
            p.label, p.delay_ns, p.area, p.power_uw
        );
    }
}
