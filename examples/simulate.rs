//! Executes synthesized designs: reference interpretation, cycle-accurate
//! schedule simulation, and differential verification of the paper's
//! Example 1 micro-architectures plus a pipelined FIR running at full
//! throughput.
use hls::designs::{fir_filter, paper_example1};
use hls::ir::PortDirection;
use hls::sim::{differential, ScheduleSim, Stimulus};
use hls::Synthesizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Example 1, sequential and pipelined, differentially verified -----
    println!("== paper example 1: differential verification ==");
    for (label, ii) in [("sequential", None), ("pipelined II=2", Some(2))] {
        let mut synth = Synthesizer::new(paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 6)
            .verify(100);
        if let Some(ii) = ii {
            synth = synth.pipeline(ii);
        }
        let result = synth.run()?;
        let report = result.verification.expect("verification requested");
        println!(
            "  {label:<15} latency {} / {} cycles per iteration — \
             interpreter and cycle simulation agree on {} writes over {} random vectors",
            result.schedule.latency,
            result.schedule.cycles_per_iteration(),
            report.writes_checked,
            report.iterations,
        );
    }

    // --- a per-cycle look at the pipelined schedule -----------------------
    let result = Synthesizer::new(paper_example1())
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(2)
        .run()?;
    let body = &result.body;
    let stim = Stimulus::random(&body.dfg, 6, 42);
    let trace = ScheduleSim::new(body, &result.schedule.desc)?.run(&stim)?;
    println!("\n== pipelined Example 1, first 8 cycles (fill + steady state) ==");
    print!("{}", trace.render(body, 8));

    let pixel = body
        .dfg
        .iter_ports()
        .find(|(_, p)| p.direction == PortDirection::Output)
        .map(|(id, _)| id)
        .expect("output port");
    println!(
        "pixel written at cycles {:?} — every II=2 cycles once filled",
        trace.write_cycles(pixel)
    );

    // --- FIR at II=1: one result per clock, bit-exact ---------------------
    println!("\n== 8-tap FIR pipelined at II=1 ==");
    let taps = [3, -5, 7, 11, 11, 7, -5, 3];
    let fir = Synthesizer::new(fir_filter(&taps, 16))
        .clock_ps(1600.0)
        .latency_bounds(1, 16)
        .pipeline(1)
        .run()?;
    let folded = fir.pipeline.as_ref().expect("pipelined");
    let stim = Stimulus::random(&fir.body.dfg, 100, 7);
    let report = differential::check(&fir.body, &fir.schedule.desc, &stim)?;
    let trace = ScheduleSim::new(&fir.body, &fir.schedule.desc)?.run(&stim)?;
    let out = fir
        .body
        .dfg
        .iter_ports()
        .find(|(_, p)| p.direction == PortDirection::Output)
        .map(|(id, _)| id)
        .expect("output port");
    let intervals = trace.write_intervals(out);
    println!(
        "  LI {} / II {} ({} stages), {} verified writes, steady-state interval {} cycle(s) → throughput {:.0}%",
        folded.li,
        folded.ii,
        folded.stages,
        report.writes_checked,
        intervals.last().copied().unwrap_or(0),
        100.0 * folded.throughput(),
    );
    println!(
        "  pipeline occupancy at cycle 12: {:?} (iteration, stage)",
        folded.active_iterations(12)
    );
    Ok(())
}
