//! Runs the netlist analyzer over the repository's stock designs with a
//! deny-level timing configuration and writes one JSON report per design.
//!
//! CI runs this and uploads the reports as artifacts; locally:
//!
//! ```text
//! cargo run --release --example lint_report [out_dir]
//! ```
//!
//! Exits non-zero if any design fails to synthesize — with timing promoted
//! to deny, that includes any netlist whose critical path misses its clock.
use hls::designs::{fir_filter, moving_average, paper_example1};
use hls::explore::idct8_design;
use hls::lint::{optimize_timed, LintConfig, TimingSummary};
use hls::tech::{ClockConstraint, TechLibrary};
use hls::{SynthesisResult, Synthesizer};

fn summary_json(s: &TimingSummary) -> String {
    format!(
        "{{\"clock_ps\": {:.1}, \"wns_ps\": {:.1}, \"tns_ps\": {:.1}, \"critical_ps\": {:.1}, \"endpoints\": {}}}",
        s.clock_ps,
        s.wns_ps,
        s.tns_ps,
        s.critical_delay_ps(),
        s.endpoints.len()
    )
}

/// Before/after timing of the timed-rewrite loop, at the design's own
/// clock (where a clean netlist records `rounds: 0` and identical
/// summaries) and at a probe clock tightened 50 ps below the stock
/// critical path (where the loop has to earn slack back).
fn timing_json(name: &str, result: &SynthesisResult) -> String {
    let lib = TechLibrary::artisan_90nm_typical();
    let stock = &result.timed_rewrites;
    let probe_clock = ClockConstraint::from_period_ps(stock.after.critical_delay_ps() - 50.0);
    let mut probed = result.netlist.clone();
    let probe = optimize_timed(&mut probed, &lib, probe_clock);
    format!(
        "{{\n  \"design\": \"{name}\",\n  \"stock\": {{\"rounds\": {}, \"before\": {}, \"after\": {}}},\n  \"tightened\": {{\"rounds\": {}, \"rebalanced_ops\": {}, \"reduced_shifts\": {}, \"retimed\": {}, \"before\": {}, \"after\": {}}}\n}}\n",
        stock.rounds,
        summary_json(&stock.before),
        summary_json(&stock.after),
        probe.rounds,
        probe.rebalanced_ops,
        probe.reduced_shifts,
        probe.retimed,
        summary_json(&probe.before),
        summary_json(&probe.after),
    )
}

fn report(
    name: &str,
    result: Result<SynthesisResult, hls::SynthesisError>,
    out_dir: &std::path::Path,
) -> Result<(), Box<dyn std::error::Error>> {
    let result = result.map_err(|e| format!("{name}: {e}"))?;
    let timing = result.lint.timing.as_ref().expect("analysis ran");
    println!(
        "{name:<24} wns {:>8.1} ps  tns {:>8.1} ps  {:>2} warn  path: {}",
        timing.wns_ps,
        timing.tns_ps,
        result.lint.warn_count(),
        timing.critical_path_names()
    );
    std::fs::write(out_dir.join(format!("{name}.json")), result.lint.to_json())?;
    std::fs::write(
        out_dir.join(format!("{name}_timing.json")),
        timing_json(name, &result),
    )?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "target/lint-reports".into()),
    );
    std::fs::create_dir_all(&out_dir)?;
    // Deny-level timing: a netlist that misses its clock fails the run.
    let deny = LintConfig::deny_timing();

    report(
        "example1_sequential",
        Synthesizer::new(paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 3)
            .lint_config(deny.clone())
            .run(),
        &out_dir,
    )?;
    report(
        "example1_ii2",
        Synthesizer::new(paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 6)
            .pipeline(2)
            .lint_config(deny.clone())
            .run(),
        &out_dir,
    )?;
    report(
        "moving_average_ii1",
        Synthesizer::new(moving_average(2, 16))
            .clock_ps(1600.0)
            .latency_bounds(1, 8)
            .pipeline(1)
            .lint_config(deny.clone())
            .run(),
        &out_dir,
    )?;
    report(
        "fir8_ii2",
        Synthesizer::new(fir_filter(&[3, -5, 7, 11, 11, 7, -5, 3], 16))
            .clock_ps(1600.0)
            .latency_bounds(1, 16)
            .pipeline(2)
            .lint_config(deny.clone())
            .run(),
        &out_dir,
    )?;
    report(
        "fir8_sequential",
        Synthesizer::new(fir_filter(&[3, -5, 7, 11, 11, 7, -5, 3], 16))
            .clock_ps(1600.0)
            .latency_bounds(1, 16)
            .lint_config(deny.clone())
            .run(),
        &out_dir,
    )?;
    report(
        "idct8_ii8",
        Synthesizer::from_body(idct8_design())
            .clock_ps(2000.0)
            .latency_bounds(1, 32)
            .pipeline(8)
            .lint_config(deny.clone())
            .run(),
        &out_dir,
    )?;
    report(
        "idct8_sequential",
        Synthesizer::from_body(idct8_design())
            .clock_ps(2000.0)
            .latency_bounds(1, 16)
            .lint_config(deny)
            .run(),
        &out_dir,
    )?;
    println!("reports written to {}", out_dir.display());
    Ok(())
}
