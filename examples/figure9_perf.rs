//! Figure 9 perf driver: schedules the synthetic design sweep, prints a
//! paper-style table, and writes the machine-readable perf trajectory to
//! `BENCH_sched.json` at the repo root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example figure9_perf              # 100..2000 + 10k/30k/100k
//! cargo run --release --example figure9_perf -- 150 300 600
//! cargo run --release --example figure9_perf -- --budget 60
//! cargo run --release --example figure9_perf -- --budget 60 150 300 5000
//! FIGURE9_BUDGET_SECONDS=120 cargo run --release --example figure9_perf -- 150 300 600
//! ```
//!
//! Bare integer arguments select the sizes to sweep (default: the historical
//! 100..2000 population plus the large region-decomposed 10k/30k/100k
//! points). `--budget <seconds>` stops *starting* new points once the
//! elapsed wall-clock crosses the budget — the first point always runs, and
//! every point that did run is still reported and written to the JSON.
//!
//! With `FIGURE9_BUDGET_SECONDS` set, the process additionally exits
//! non-zero when the end-to-end wall-clock exceeds that budget — the CI perf
//! smoke job uses this as its regression gate.

use hls::explore::experiments::{
    figure9_default_sizes, figure9_large_sizes, figure9_sweep_with_budget,
};
use std::time::Duration;

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    let mut budget: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--budget" {
            let secs: f64 = args
                .next()
                .expect("--budget requires a value")
                .parse()
                .expect("--budget value must be a number of seconds");
            budget = Some(Duration::from_secs_f64(secs));
        } else {
            sizes.push(arg.parse().expect("sizes must be integers"));
        }
    }
    if sizes.is_empty() {
        sizes = figure9_default_sizes();
        sizes.extend(figure9_large_sizes());
    }

    let sweep = figure9_sweep_with_budget(&sizes, budget);
    print!("{}", sweep.table());

    let json_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_sched.json");
    sweep
        .write_json(&json_path)
        .expect("write BENCH_sched.json");
    println!("wrote {}", json_path.display());

    if let Ok(budget) = std::env::var("FIGURE9_BUDGET_SECONDS") {
        let budget: f64 = budget
            .parse()
            .expect("FIGURE9_BUDGET_SECONDS must be a number");
        if sweep.total_seconds > budget {
            eprintln!(
                "perf budget exceeded: {:.3}s > {budget:.3}s",
                sweep.total_seconds
            );
            std::process::exit(1);
        }
        println!(
            "within perf budget: {:.3}s <= {budget:.3}s",
            sweep.total_seconds
        );
    }
}
