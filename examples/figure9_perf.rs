//! Figure 9 perf driver: schedules the synthetic design sweep, prints a
//! paper-style table, and writes the machine-readable perf trajectory to
//! `BENCH_sched.json` at the repo root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example figure9_perf              # full 100..2000 sweep
//! cargo run --release --example figure9_perf -- 150 300 600
//! FIGURE9_BUDGET_SECONDS=120 cargo run --release --example figure9_perf -- 150 300 600
//! ```
//!
//! With `FIGURE9_BUDGET_SECONDS` set, the process exits non-zero when the
//! end-to-end wall-clock exceeds the budget — the CI perf smoke job uses
//! this as its regression gate.

use hls::explore::experiments::{figure9_default_sizes, figure9_sweep};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("sizes must be integers"))
        .collect();
    let sizes = if args.is_empty() {
        figure9_default_sizes()
    } else {
        args
    };

    let sweep = figure9_sweep(&sizes);
    print!("{}", sweep.table());

    let json_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_sched.json");
    sweep
        .write_json(&json_path)
        .expect("write BENCH_sched.json");
    println!("wrote {}", json_path.display());

    if let Ok(budget) = std::env::var("FIGURE9_BUDGET_SECONDS") {
        let budget: f64 = budget
            .parse()
            .expect("FIGURE9_BUDGET_SECONDS must be a number");
        if sweep.total_seconds > budget {
            eprintln!(
                "perf budget exceeded: {:.3}s > {budget:.3}s",
                sweep.total_seconds
            );
            std::process::exit(1);
        }
        println!(
            "within perf budget: {:.3}s <= {budget:.3}s",
            sweep.total_seconds
        );
    }
}
