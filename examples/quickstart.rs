//! Quickstart: describe a small behaviour, synthesize it sequentially and
//! pipelined, and compare the two implementations.
use hls::frontend::{BehaviorBuilder, Expr};
use hls::ir::CmpKind;
use hls::Synthesizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y = (a*b + c) per iteration — a tiny multiply-accumulate kernel.
    let mut b = BehaviorBuilder::new("mac");
    b.port_in("a", 16);
    b.port_in("b", 16);
    b.port_in("c", 16);
    b.port_out("y", 32);
    let acc = b.var("acc", 32, 0);
    let body = vec![
        b.assign(
            acc,
            Expr::add(
                Expr::mul(b.read_port("a"), b.read_port("b")),
                b.read_port("c"),
            ),
        ),
        b.write_port("y", b.read_var(acc)),
        b.wait(),
    ];
    let loop_stmt = b.do_while(
        "mac_loop",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("a"), Expr::Const(0)),
    );
    b.infinite_loop(vec![loop_stmt]);
    let behavior = b.build();

    println!("== sequential ==");
    let seq = Synthesizer::new(behavior.clone())
        .clock_ps(1600.0)
        .latency_bounds(1, 4)
        .run()?;
    println!("{}", seq.schedule_table());
    println!(
        "latency {} cycles, area {:.0}, power {:.1} uW",
        seq.schedule.latency, seq.area, seq.power_uw
    );

    println!("\n== pipelined, II = 1 ==");
    let pipe = Synthesizer::new(behavior)
        .clock_ps(1600.0)
        .latency_bounds(1, 6)
        .pipeline(1)
        .run()?;
    println!("{}", pipe.schedule_table());
    let folded = pipe.pipeline.as_ref().expect("pipelined");
    println!(
        "II {} / LI {} ({} stages), area {:.0}, power {:.1} uW",
        folded.ii, folded.li, folded.stages, pipe.area, pipe.power_uw
    );
    println!(
        "\nThroughput gain: {:.1}x",
        seq.schedule.cycles_per_iteration() as f64 / folded.ii as f64
    );
    Ok(())
}
