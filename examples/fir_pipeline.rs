//! Pipelines an 8-tap FIR filter at several initiation intervals and shows
//! the throughput / area trade-off — the bread-and-butter use case the
//! paper's industrial designs (filters, FFTs) represent.
use hls::designs::fir_filter;
use hls::Synthesizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let taps = [3, -5, 7, 11, 11, 7, -5, 3];
    println!("8-tap FIR, 1600 ps clock");
    println!(
        "  {:>4} {:>8} {:>8} {:>10} {:>10}",
        "II", "LI", "stages", "area", "power_uW"
    );
    for ii in [4u32, 2, 1] {
        let result = Synthesizer::new(fir_filter(&taps, 16))
            .clock_ps(1600.0)
            .latency_bounds(1, 16)
            .pipeline(ii)
            .run()?;
        let folded = result.pipeline.as_ref().expect("pipelined");
        println!(
            "  {:>4} {:>8} {:>8} {:>10.0} {:>10.1}",
            folded.ii, folded.li, folded.stages, result.area, result.power_uw
        );
    }
    let seq = Synthesizer::new(fir_filter(&taps, 16))
        .clock_ps(1600.0)
        .latency_bounds(1, 16)
        .run()?;
    println!(
        "  {:>4} {:>8} {:>8} {:>10.0} {:>10.1}   (sequential)",
        "-", seq.schedule.latency, 1, seq.area, seq.power_uw
    );
    Ok(())
}
