//! Minimal, offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset the `hls-bench` targets use: the [`Criterion`]
//! builder (`sample_size`, `measurement_time`, `warm_up_time`),
//! [`Criterion::bench_function`] with [`Bencher::iter`], plus the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a plain
//! wall-clock mean/min/max over `sample_size` samples — no outlier analysis,
//! no plots — which is enough to print the paper-figure tables and compare
//! runs by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
///
/// A portable best-effort substitute for `criterion::black_box` (reads the
/// value through a volatile-ish opaque path via `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver and configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the time budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark: warm-up, then `sample_size` timed samples (capped
    /// by `measurement_time`), then prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iterations: 0,
        };

        // Warm-up: run the routine until the warm-up budget elapses.
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            f(&mut bencher);
            if bencher.iterations == 0 {
                break; // routine never called iter(); avoid spinning forever
            }
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let measure_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            bencher.total = Duration::ZERO;
            bencher.iterations = 0;
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.total / bencher.iterations);
            }
            if Instant::now() >= measure_end {
                break;
            }
        }

        if samples.is_empty() {
            println!("{id:<50} (no samples)");
            return self;
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{id:<50} time: [{} {} {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len()
        );
        self
    }

    /// Final hook run by [`criterion_main!`]; a no-op in this stand-in.
    pub fn final_summary(&mut self) {}
}

/// Times closures inside a benchmark routine.
#[derive(Clone, Debug)]
pub struct Bencher {
    total: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times one invocation of `routine` (accumulated into the sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.total += start.elapsed();
        self.iterations += 1;
        drop(black_box(out));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = unit_benches;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        targets = quick
    }

    #[test]
    fn group_runs_to_completion() {
        unit_benches();
    }

    #[test]
    fn bencher_accumulates_iterations() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u32;
        c.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }
}
