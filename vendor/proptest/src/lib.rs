//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! Implements the subset used by this workspace's property tests:
//!
//! * the [`Strategy`] trait with integer-range strategies, [`Just`],
//!   [`any`] and the [`prop_oneof!`] union;
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   attribute) expanding each property into an ordinary `#[test]` that runs
//!   `cases` deterministic iterations;
//! * `prop_assert!` / `prop_assert_eq!` returning [`TestCaseError`].
//!
//! There is no shrinking: a failing case panics with the values embedded in
//! the message, which is enough to reproduce (generation is seeded per case
//! index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Everything a test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum local rejects (accepted for API compatibility, unused).
    pub max_local_rejects: u32,
    /// Maximum global rejects (accepted for API compatibility, unused).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
            max_global_rejects: 1_024,
        }
    }
}

/// Error produced by a failing property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Creates a rejection (treated as failure in this stand-in).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic per-test random source.
#[derive(Clone, Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// Creates the runner for the given case index (deterministic seed).
    pub fn for_case(case: u32) -> Self {
        TestRunner {
            rng: SmallRng::seed_from_u64(0x5eed_0000_0000_0000 ^ u64::from(case)),
        }
    }

    /// Access to the underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe façade used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, runner: &mut TestRunner) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, runner: &mut TestRunner) -> S::Value {
        self.generate(runner)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        self.inner.dyn_generate(runner)
    }
}

/// Strategy producing a constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Marker for types with a canonical arbitrary strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.rng().gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(runner: &mut TestRunner) -> u32 {
        runner.rng().gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(runner: &mut TestRunner) -> u64 {
        runner.rng().gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(runner: &mut TestRunner) -> usize {
        runner.rng().next_u64() as usize
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Returns the canonical strategy for `T` (like `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// A uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        let idx = runner.rng().gen_range(0..self.options.len());
        self.options[idx].generate(runner)
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property, returning a test-case failure
/// instead of panicking so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Declares property tests. Each property becomes a `#[test]` running
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut runner = $crate::TestRunner::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut runner);)+
                    let case_desc = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property failed at case #{case} [{case_desc}]: {e}");
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Tag {
        A,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn ranges_and_unions_generate_valid_values(
            n in 5usize..10,
            tag in prop_oneof![Just(Tag::A), Just(Tag::B)],
            flag in any::<bool>(),
        ) {
            prop_assert!((5..10).contains(&n));
            prop_assert!(matches!(tag, Tag::A | Tag::B));
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u64..4) {
            prop_assert!(x < 4);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_case_values() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
