//! Derive-macro half of the offline `serde` stand-in.
//!
//! Emits empty impls of the marker traits in the sibling `serde` stub. Only
//! supports the shapes this workspace actually derives on: non-generic
//! `struct`s and `enum`s (with any fields/variants — the bodies are ignored).

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following the `struct`/`enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tree in input.clone() {
        if let TokenTree::Ident(ident) = tree {
            let s = ident.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive stub: expected a struct or enum");
}

/// Rejects generic types: the stub emits non-generic impls only.
fn assert_not_generic(input: &TokenStream, name: &str) {
    let mut after_name = false;
    for tree in input.clone() {
        match tree {
            TokenTree::Ident(ident) if ident.to_string() == name => after_name = true,
            TokenTree::Punct(p) if after_name => {
                if p.as_char() == '<' {
                    panic!(
                        "serde_derive stub: generic type `{name}` is not supported; \
                         use the real serde crate"
                    );
                }
                break;
            }
            TokenTree::Group(_) if after_name => break,
            _ => {}
        }
    }
}

/// Stand-in for `#[derive(Serialize)]`: emits an empty marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_not_generic(&input, &name);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

/// Stand-in for `#[derive(Deserialize)]`: emits an empty marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_not_generic(&input, &name);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}
