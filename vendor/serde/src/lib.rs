//! Minimal, offline stand-in for the `serde` crate.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` to mark result
//! types as serializable — nothing actually serializes them (there is no
//! `serde_json` in the tree). The traits here are therefore empty markers,
//! and the derive macros (re-exported from the `serde_derive` stub, exactly
//! like the real crate re-exports them) emit empty impls. Swapping in the
//! real serde later requires no source changes in the consuming crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Like the real crate: the derive macros share the traits' names (macros
// live in a separate namespace, so the glob re-export does not collide).
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
