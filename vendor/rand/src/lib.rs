//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! Implements just the surface the workspace uses: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen` / `gen_range`. The generator is SplitMix64 — statistically fine for
//! synthetic-design generation, deliberately simple, and fully reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core trait: a source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension trait with the ergonomic sampling methods of `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
