//! Root package of the `rpp-hls` workspace.
//!
//! This crate intentionally exports nothing: it exists so the workspace-level
//! integration tests under `tests/` and the examples under `examples/` have a
//! package to belong to. The actual library surface lives in the `hls` facade
//! crate (`crates/core`) and the `hls-*` member crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
